//! Graph-level analysis passes: alloc-reachability, canonical-output
//! determinism, and serve/exec concurrency lints.
//!
//! # Alloc-reachability (`hot-path-alloc`)
//!
//! Roots are the per-access hooks of every [`PwReplacementPolicy`] impl
//! plus any function marked `// audit:hot-path`. From each root, a BFS
//! walks call edges (skipping construction-time functions — `new`,
//! `default`, `prepare`, `with_*`/`from_*`, and anything marked
//! `// audit:alloc-exempt`) and reports every allocation-evidence site it
//! can reach, with the path that reaches it. This turns the runtime
//! counting-allocator wall (`tests/alloc_budget.rs`) from a sampled check
//! on the inputs the tests happen to run into a whole-graph static proof.
//!
//! # Canonical-output determinism (`unordered-emission`)
//!
//! Roots are functions named `to_json` and anything marked
//! `// audit:canonical-output`. Reaching a hash-ordered map iteration
//! (`.iter()`/`.keys()`/... on a `FastHashMap` without a later in-body
//! `sort*`) means byte-identical output depends on hash order — exactly
//! the bug class the golden files pin at runtime.
//!
//! # Concurrency (`lock-order`, `lock-across-channel`,
//! `blocking-under-lock`, `unaccounted-spawn`)
//!
//! Token-level guard tracking over `crates/serve` and `crates/exec` only:
//! guards from `lock_clean(..)`/`.lock(..)` are *binding* guards (live to
//! the end of the enclosing block) when bound by a plain `let g = ...;`,
//! and *temporary* guards (dead at the end of the statement) otherwise —
//! which is precisely how the worker-pool steal loop stays deadlock-free.
//! While a guard is live: acquiring the same lock again is a self-deadlock,
//! globally inconsistent acquisition orders are reported at every site,
//! blocking channel operations (`send`/`recv`/...) under a guard are
//! reported, and so are `sleep`/`join` pauses (`Condvar::wait_timeout` is
//! the accounted way to pause while locked — it atomically releases the
//! guard it consumes). Thread spawns outside functions marked
//! `// audit:spawn-site` are flagged so every thread — the daemon's
//! per-shard executors, the router's forwarders and health prober, the
//! event-loop acceptors — stays accounted to a join/shutdown path.
//!
//! [`PwReplacementPolicy`]: uopcache_cache::PwReplacementPolicy

use crate::callgraph::{CallGraph, FileView};
use crate::lexer::{Tok, TokKind};
use crate::rules::Diagnostic;
use std::collections::VecDeque;
use uopcache_model::hash::{FastHashMap, FastHashSet};

/// The replacement-policy trait whose per-access hooks are hot-path roots.
const POLICY_TRAIT: &str = "PwReplacementPolicy";

/// Per-access hooks of [`POLICY_TRAIT`] — everything but `name`/`prepare`
/// (construction-time) and `introspect` (a diagnostics accessor, only
/// consulted by reporting surfaces after a run).
const HOT_HOOKS: [&str; 8] = [
    "on_lookup",
    "on_hit",
    "on_insert",
    "on_evict",
    "on_invalidate",
    "should_bypass",
    "choose_victim",
    "last_selection_was_fallback",
];

/// Function names exempt from alloc-reachability by construction-time
/// convention.
fn name_exempt(name: &str) -> bool {
    name == "new"
        || name == "default"
        || name == "prepare"
        || name.starts_with("with_")
        || name.starts_with("from_")
}

/// Whether node `i` is a hot-path root. An `audit:alloc-exempt` marker
/// wins over root status: a policy wrapper that exists to allocate
/// diagnostics (e.g. the strict-invariants `CheckedPolicy`) opts its hooks
/// out of the proof entirely, with the justification at the marker.
pub fn is_hot_root(g: &CallGraph, i: usize) -> bool {
    let n = &g.nodes[i];
    if n.in_test || n.markers.alloc_exempt {
        return false;
    }
    n.markers.hot_path
        || (n.trait_impl.as_deref() == Some(POLICY_TRAIT) && HOT_HOOKS.contains(&n.name.as_str()))
}

/// Whether node `i` is exempt from alloc-reachability traversal.
pub fn is_alloc_exempt(g: &CallGraph, i: usize) -> bool {
    let n = &g.nodes[i];
    n.in_test || n.markers.alloc_exempt || name_exempt(&n.name)
}

/// Runs all three passes and returns their diagnostics (unsorted,
/// undeduplicated across passes — the caller owns canonical ordering).
pub fn analyze(g: &CallGraph, files: &[FileView]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    alloc_reachability(g, files, &mut diags);
    unordered_emission(g, files, &mut diags);
    concurrency(g, files, &mut diags);
    diags
}

/// BFS from `root` over call edges, skipping nodes where `skip` is true.
/// Calls `visit(node, path_from_root)` on every reached node (including
/// the root itself).
fn walk(
    g: &CallGraph,
    root: usize,
    skip: &dyn Fn(usize) -> bool,
    visit: &mut dyn FnMut(usize, &[usize]),
) {
    let mut parent: FastHashMap<usize, usize> = FastHashMap::default();
    let mut seen: FastHashSet<usize> = FastHashSet::default();
    let mut q = VecDeque::new();
    seen.insert(root);
    q.push_back(root);
    while let Some(n) = q.pop_front() {
        let mut path = vec![n];
        let mut p = n;
        while let Some(&pp) = parent.get(&p) {
            path.push(pp);
            p = pp;
        }
        path.reverse();
        visit(n, &path);
        for &c in &g.edges[n] {
            if !seen.contains(&c) && !skip(c) {
                seen.insert(c);
                parent.insert(c, n);
                q.push_back(c);
            }
        }
    }
}

fn trace(g: &CallGraph, path: &[usize]) -> String {
    path.iter()
        .map(|&i| format!("`{}`", g.nodes[i].display_name()))
        .collect::<Vec<_>>()
        .join(" → ")
}

fn alloc_reachability(g: &CallGraph, files: &[FileView], diags: &mut Vec<Diagnostic>) {
    let mut reported: FastHashSet<(usize, u32, usize)> = FastHashSet::default();
    for root in 0..g.nodes.len() {
        if !is_hot_root(g, root) {
            continue;
        }
        walk(g, root, &|i| is_alloc_exempt(g, i), &mut |n, path| {
            for ev in &g.allocs[n] {
                if !reported.insert((g.nodes[n].file, ev.line, root)) {
                    continue;
                }
                diags.push(Diagnostic {
                    file: files[g.nodes[n].file].path.to_path_buf(),
                    line: ev.line,
                    rule: "hot-path-alloc",
                    message: format!(
                        "{} reachable from hot-path root `{}` via {}; move it to \
                         construction/`prepare()` time or mark the containing fn \
                         `// audit:alloc-exempt` with a justification",
                        ev.what,
                        g.nodes[root].display_name(),
                        trace(g, path),
                    ),
                });
            }
        });
    }
}

fn unordered_emission(g: &CallGraph, files: &[FileView], diags: &mut Vec<Diagnostic>) {
    let mut reported: FastHashSet<(usize, u32)> = FastHashSet::default();
    for root in 0..g.nodes.len() {
        let rn = &g.nodes[root];
        if rn.in_test || !(rn.name == "to_json" || rn.markers.canonical_output) {
            continue;
        }
        walk(g, root, &|i| g.nodes[i].in_test, &mut |n, path| {
            for ev in &g.map_iters[n] {
                if !reported.insert((g.nodes[n].file, ev.line)) {
                    continue;
                }
                diags.push(Diagnostic {
                    file: files[g.nodes[n].file].path.to_path_buf(),
                    line: ev.line,
                    rule: "unordered-emission",
                    message: format!(
                        "{} feeds canonical output root `{}` via {}; collect and \
                         sort before emitting",
                        ev.what,
                        g.nodes[root].display_name(),
                        trace(g, path),
                    ),
                });
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Concurrency pass
// ---------------------------------------------------------------------------

/// A live mutex guard being tracked through a function body.
struct Guard {
    /// Lock identity — the trailing identifier of the mutex path
    /// (`self.metrics` → `metrics`, `queues[w]` → `queues`).
    lock: String,
    /// `let` binding name, for `drop(name)` tracking.
    binding: Option<String>,
    /// Brace depth at acquisition.
    depth: i32,
    /// Temporary guards die at the end of the acquiring statement.
    temp: bool,
    /// Line of acquisition (for diagnostics).
    line: u32,
}

/// Channel operations that block (or publish) while a guard is held.
const CHANNEL_OPS: [&str; 5] = ["send", "recv", "recv_timeout", "try_recv", "try_send"];

/// Blocking calls that stall every other waiter while a guard is held:
/// `thread::sleep` freezes the lock for the whole pause, and `join`ing a
/// thread that needs the same lock is a deadlock. `Condvar::wait_timeout`
/// is the accounted way to pause while locked (it atomically releases the
/// guard it consumes), so it is deliberately absent here.
const BLOCKING_OPS: [&str; 2] = ["sleep", "join"];

fn concurrency(g: &CallGraph, files: &[FileView], diags: &mut Vec<Diagnostic>) {
    // (first, second) lock-name pair → acquisition sites.
    let mut pairs: FastHashMap<(String, String), Vec<(usize, u32)>> = FastHashMap::default();
    for (ni, node) in g.nodes.iter().enumerate() {
        let f = &files[node.file];
        let path_str = f.path.to_string_lossy().replace('\\', "/");
        if !(path_str.contains("crates/serve/") || path_str.contains("crates/exec/")) {
            continue;
        }
        if node.in_test || node.name == "lock_clean" {
            continue;
        }
        scan_fn(g, ni, f, &mut pairs, diags);
    }
    // Globally inconsistent orders: both (a, b) and (b, a) observed.
    let mut keys: Vec<&(String, String)> = pairs.keys().collect();
    keys.sort();
    for key in keys {
        let (a, b) = key;
        if a >= b {
            continue;
        }
        let rev = (b.clone(), a.clone());
        if let Some(rev_sites) = pairs.get(&rev) {
            let sites = &pairs[key];
            for &(fi, line) in sites.iter().chain(rev_sites.iter()) {
                diags.push(Diagnostic {
                    file: files[fi].path.to_path_buf(),
                    line,
                    rule: "lock-order",
                    message: format!(
                        "inconsistent lock order: `{a}` and `{b}` are acquired in \
                         both orders across the workspace (deadlock risk); pick one \
                         global order"
                    ),
                });
            }
        }
    }
}

/// Scans one function body tracking guard liveness.
fn scan_fn(
    g: &CallGraph,
    ni: usize,
    f: &FileView,
    pairs: &mut FastHashMap<(String, String), Vec<(usize, u32)>>,
    diags: &mut Vec<Diagnostic>,
) {
    let node = &g.nodes[ni];
    let toks = f.toks;
    let (bs, be) = node.body;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // Current statement's `let` binding name, if any.
    let mut stmt_let: Option<String> = None;
    let mut k = bs;
    while k < be {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    stmt_let = None;
                }
                "}" => {
                    depth -= 1;
                    guards.retain(|gu| gu.depth <= depth);
                    stmt_let = None;
                }
                ";" => {
                    guards.retain(|gu| !(gu.temp && gu.depth == depth));
                    stmt_let = None;
                }
                _ => {}
            }
            k += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let name = t.text.as_str();
        if name == "let" {
            let mut j = k + 1;
            if toks
                .get(j)
                .is_some_and(|x| x.kind == TokKind::Ident && x.text == "mut")
            {
                j += 1;
            }
            stmt_let = toks
                .get(j)
                .filter(|x| x.kind == TokKind::Ident)
                .map(|x| x.text.clone());
            k += 1;
            continue;
        }
        let is_call = toks.get(k + 1).is_some_and(|n| n.is_punct("("));
        if !is_call {
            k += 1;
            continue;
        }
        let after_dot = k >= 1 && toks[k - 1].is_punct(".");
        // `drop(binding)` releases a named guard.
        if name == "drop" && !after_dot {
            if let Some(arg) = toks.get(k + 2).filter(|x| x.kind == TokKind::Ident) {
                guards.retain(|gu| gu.binding.as_deref() != Some(arg.text.as_str()));
            }
            k += 2;
            continue;
        }
        // Lock acquisition?
        let lock_name = if name == "lock_clean" && !after_dot {
            lock_name_forward(toks, k + 1, be)
        } else if (name == "lock" || name == "lock_clean") && after_dot {
            crate::callgraph::receiver_chain(toks, k.saturating_sub(2), bs)
                .and_then(|c| c.into_iter().rev().find(|p| p != "self"))
        } else {
            None
        };
        if let Some(lock) = lock_name {
            for gu in &guards {
                if gu.lock == lock {
                    diags.push(Diagnostic {
                        file: f.path.to_path_buf(),
                        line: t.line,
                        rule: "lock-order",
                        message: format!(
                            "lock `{lock}` re-acquired while its guard from line {} \
                             is still live (self-deadlock)",
                            gu.line
                        ),
                    });
                } else {
                    pairs
                        .entry((gu.lock.clone(), lock.clone()))
                        .or_default()
                        .push((node.file, t.line));
                }
            }
            // Binding guard only for `let g = lock_clean(..);` — a chained
            // method (`let x = lock_clean(..).pop_front();`) is a temporary
            // that dies at the `;`.
            let close = skip_group_at(toks, k + 1);
            let plain_binding =
                stmt_let.is_some() && toks.get(close).is_some_and(|x| x.is_punct(";"));
            guards.push(Guard {
                lock,
                binding: if plain_binding {
                    stmt_let.clone()
                } else {
                    None
                },
                depth,
                temp: !plain_binding,
                line: t.line,
            });
            k += 2;
            continue;
        }
        // Channel op under a guard?
        if after_dot && CHANNEL_OPS.contains(&name) {
            if let Some(gu) = guards.first() {
                diags.push(Diagnostic {
                    file: f.path.to_path_buf(),
                    line: t.line,
                    rule: "lock-across-channel",
                    message: format!(
                        "channel `.{name}(..)` while holding the `{}` guard from \
                         line {}; release the lock before touching the channel",
                        gu.lock, gu.line
                    ),
                });
            }
        }
        // Sleep or join under a guard? The event loop and the router's
        // health thread pace themselves with sleeps; none of those pauses
        // may pin a lock other threads need to make progress.
        if BLOCKING_OPS.contains(&name) {
            if let Some(gu) = guards.first() {
                diags.push(Diagnostic {
                    file: f.path.to_path_buf(),
                    line: t.line,
                    rule: "blocking-under-lock",
                    message: format!(
                        "blocking `{name}(..)` while holding the `{}` guard from \
                         line {}; release the lock first (pausing with a lock held \
                         is only accounted through `Condvar::wait_timeout`)",
                        gu.lock, gu.line
                    ),
                });
            }
        }
        // Unaccounted spawn?
        if name == "spawn" && !node.markers.spawn_site {
            diags.push(Diagnostic {
                file: f.path.to_path_buf(),
                line: t.line,
                rule: "unaccounted-spawn",
                message: format!(
                    "thread spawn in `{}` outside an accounted spawn path; mark the \
                     fn `// audit:spawn-site` once its join/shutdown story is owned",
                    node.display_name()
                ),
            });
        }
        k += 1;
    }
}

/// Lock name from a `lock_clean(&self.metrics)` argument list starting at
/// `open` (the `(` token index): the last path identifier before an index
/// bracket, comma, or the closing paren, skipping `&`/`mut`/`self`.
fn lock_name_forward(toks: &[Tok], open: usize, hi: usize) -> Option<String> {
    let mut j = open + 1;
    let mut last: Option<String> = None;
    while j < hi {
        let t = &toks[j];
        if t.is_punct(")") || t.is_punct(",") || t.is_punct("[") {
            break;
        }
        if t.kind == TokKind::Ident && t.text != "self" && t.text != "mut" {
            last = Some(t.text.clone());
        }
        j += 1;
    }
    last
}

/// Index just past the group opening at `open`.
fn skip_group_at(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" if toks[i].kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if toks[i].kind == TokKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}
