//! A small hand-rolled Rust tokenizer — just enough lexical fidelity for the
//! audit's lint rules.
//!
//! The lexer skips comments (line, nested block, and doc comments — so code
//! inside doctests is exempt from the lint rules) and understands string,
//! raw-string, byte-string and char literals well enough never to misread
//! their contents as code. It is not a full Rust lexer: tokens the rules do
//! not care about are lumped into single- or double-character punctuation.

/// Kinds of token the audit rules inspect.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `as`, `impl`, ...).
    Ident,
    /// An integer literal.
    Int,
    /// A floating-point literal (contains `.`, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// A string literal (normal or raw); `text` holds the *contents*.
    Str,
    /// A char literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// Punctuation; `text` is the operator itself (`==`, `.`, `{`, ...).
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Str`], the unescaped-as-written
    /// contents without the delimiters).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A lexed file: code tokens plus the comments that were skipped over.
///
/// Comments are returned separately (rather than interleaved) so the token
/// windows the rules match against are unaffected, while comment-driven
/// markers (`audit:allow(..)`, `audit:hot-path`, ...) can be read from real
/// comments only — a string literal containing `audit:allow(...)` is a
/// [`TokKind::Str`] token and can never suppress a rule.
pub struct Lexed {
    /// The code tokens, comments and whitespace skipped.
    pub toks: Vec<Tok>,
    /// One entry per comment: the text without delimiters (for line and doc
    /// comments, without the leading `//`/`///`; for block comments, the
    /// interior), at the line the comment starts on.
    pub comments: Vec<(u32, String)>,
}

/// Tokenizes `src`, skipping comments and whitespace.
///
/// Unterminated strings or comments end the token stream early rather than
/// erroring: the audit lints best-effort rather than refusing a file.
pub fn tokenize(src: &str) -> Vec<Tok> {
    tokenize_full(src).toks
}

/// Tokenizes `src`, also collecting the comments (see [`Lexed`]).
pub fn tokenize_full(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments: Vec<(u32, String)> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Source files are far below 2^32 lines, so the count fits in u32.
    #[allow(clippy::cast_possible_truncation)]
    let bump_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if b[i + 1] == '/' {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i]
                    .iter()
                    .collect::<String>()
                    .trim_start_matches('/')
                    .trim_start_matches('!')
                    .to_string();
                comments.push((line, text));
                continue;
            }
            if b[i + 1] == '*' {
                let mut depth = 1;
                let start = i;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == '/' && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == '*' && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let interior: String = b[start + 2..i.saturating_sub(2).max(start + 2)]
                    .iter()
                    .collect();
                comments.push((line, interior));
                line += bump_lines(&b[start..i]);
                continue;
            }
        }
        // Raw strings / raw byte strings: r"..", r#".."#, br#".."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, is_raw) = match (c, b.get(i + 1), b.get(i + 2)) {
                ('r', Some('"' | '#'), _) => (1, true),
                ('b', Some('r'), Some('"' | '#')) => (2, true),
                _ => (0, false),
            };
            if is_raw {
                let start_line = line;
                let mut j = i + prefix_len;
                let mut hashes = 0;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    j += 1;
                    let content_start = j;
                    let closer: String = std::iter::once('"')
                        .chain(std::iter::repeat_n('#', hashes))
                        .collect();
                    let rest: String = b[j..].iter().collect();
                    let end = rest
                        .find(&closer)
                        .map_or(n, |p| j + rest[..p].chars().count());
                    let text: String = b[content_start..end.min(n)].iter().collect();
                    line += bump_lines(&b[i..end.min(n)]);
                    i = (end + closer.chars().count()).min(n);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line: start_line,
                    });
                    continue;
                }
            }
        }
        // Normal strings and byte strings.
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&'"')) {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let content_start = j;
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '"' => break,
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
            }
            let text: String = b[content_start..j.min(n)].iter().collect();
            i = (j + 1).min(n);
            toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = b.get(i + 1).copied().unwrap_or(' ');
            let after = b.get(i + 2).copied().unwrap_or(' ');
            let is_lifetime =
                (next.is_alphabetic() || next == '_') && after != '\'' && next != '\\';
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: scan to the closing quote, honouring escapes.
            let mut j = i + 1;
            while j < n && b[j] != '\'' {
                if b[j] == '\\' {
                    j += 1;
                }
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Char,
                text: b[i + 1..j.min(n)].iter().collect(),
                line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut saw_dot = false;
            let mut saw_exp = false;
            let hex = c == '0' && matches!(b.get(i + 1), Some('x' | 'X' | 'o' | 'b'));
            if hex {
                j += 2;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            } else {
                while j < n {
                    let d = b[j];
                    if d.is_ascii_digit() || d == '_' {
                        j += 1;
                    } else if d == '.' && !saw_dot && b.get(j + 1).is_none_or(|&x| x != '.') {
                        // `1..x` is a range, not a float.
                        if b.get(j + 1).is_some_and(|x| x.is_alphabetic()) {
                            break; // method call on an integer: `1.max(..)`
                        }
                        saw_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E')
                        && !saw_exp
                        && b.get(j + 1)
                            .is_some_and(|&x| x.is_ascii_digit() || x == '+' || x == '-')
                    {
                        saw_exp = true;
                        j += 2;
                    } else if d.is_alphabetic() {
                        // Suffix (u32, f64, ...).
                        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                            j += 1;
                        }
                        break;
                    } else {
                        break;
                    }
                }
            }
            let text: String = b[i..j].iter().collect();
            let kind =
                if !hex && (saw_dot || saw_exp || text.ends_with("f32") || text.ends_with("f64")) {
                    TokKind::Float
                } else {
                    TokKind::Int
                };
            toks.push(Tok { kind, text, line });
            i = j;
            continue;
        }
        // Identifiers and keywords (including r# raw identifiers).
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Two-character operators the rules care about, then single chars.
        let two: Option<&str> = if i + 1 < n {
            match (c, b[i + 1]) {
                ('=', '=') => Some("=="),
                ('!', '=') => Some("!="),
                ('<', '=') => Some("<="),
                ('>', '=') => Some(">="),
                ('&', '&') => Some("&&"),
                ('|', '|') => Some("||"),
                (':', ':') => Some("::"),
                ('-', '>') => Some("->"),
                ('=', '>') => Some("=>"),
                ('.', '.') => Some(".."),
                _ => None,
            }
        } else {
            None
        };
        if let Some(op) = two {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: op.to_string(),
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    Lexed { toks, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let toks = kinds("// x.unwrap()\n/* y.unwrap() /* nested */ */\nlet s = \"a.unwrap()\"; s");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "a.unwrap()"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"quote " inside"#; done"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == r#"quote " inside"#));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "done"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("1.5 + 2 + 0x1f + 3f64 + 1e9 + (0..4) + 1.max(2)");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, ["1.5", "3f64", "1e9"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Int && t == "0x1f"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = tokenize("let a = \"x\ny\";\nb");
        let b = toks.iter().find(|t| t.is_ident("b")).expect("b token");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn byte_and_char_literals_holding_quotes_and_slashes() {
        // `b'"'` and `'"'` must not open a string; `'/'` followed by more
        // code must not open a comment. Historically classic lexer traps.
        let toks = kinds("let a = b'\"'; let b = '\"'; let c = '/'; after");
        assert!(
            !toks.iter().any(|(k, _)| *k == TokKind::Str),
            "char literals misread as strings: {toks:?}"
        );
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["\"", "\"", "/"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "after"));
    }

    #[test]
    fn string_containing_line_comment_marker_is_still_a_string() {
        let toks = kinds("let url = \"https://example.com\"; x.unwrap()");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "https://example.com"));
        // The code after the string is still lexed (the `//` inside the
        // string did not eat the rest of the line).
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* a /* b /* c */ */ still comment */ code");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].0 == TokKind::Ident && toks[0].1 == "code");
    }

    #[test]
    fn raw_string_with_hashes_containing_quote_escape_lookalikes() {
        let toks = kinds(r####"let s = r#"a \" b "quoted" // not comment"#; end"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("not comment")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "end"));
    }

    #[test]
    fn byte_string_contents_are_not_code() {
        let toks = kinds("let s = b\"// x.unwrap()\"; done");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "done"));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let lexed = tokenize_full("code1 // trailing note\n/* block\nspans */\ncode2");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].0, 1);
        assert!(lexed.comments[0].1.contains("trailing note"));
        assert_eq!(lexed.comments[1].0, 2);
        assert!(lexed.comments[1].1.contains("block"));
        // and the code tokens are unaffected
        let idents: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["code1", "code2"]);
    }

    #[test]
    fn two_char_operators() {
        let toks = kinds("a == b != c :: d -> e");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->"]);
    }
}
