//! The audit's lint rules, the allowlist that configures them, and the
//! workspace walker that applies them.

use crate::lexer::{tokenize, Tok, TokKind};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// A single lint finding.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Diagnostic {
    /// Path of the offending file (as walked, workspace-relative when the
    /// audit is run from the workspace root).
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: u32,
    /// Rule identifier (`no-unwrap`, `no-float-eq`, `no-narrowing-cast`,
    /// `no-unbounded-queue`, `unique-policy-names`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Rule suppressions parsed from an allowlist file.
///
/// Format, one entry per line:
///
/// ```text
/// # comment
/// <rule> <path-suffix>            # suppress <rule> in files ending in <path-suffix>
/// <rule> <path-suffix>:<line>     # suppress only on that line
/// ```
///
/// In addition, a source line containing the comment `audit:allow(<rule>)`
/// suppresses that rule on that line without an allowlist entry.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, Option<u32>)>,
}

impl Allowlist {
    /// Parses the allowlist text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "allowlist line {}: expected `<rule> <path>`",
                    i + 1
                ));
            };
            let (suffix, line_no) = match path.rsplit_once(':') {
                Some((p, l)) if l.chars().all(|c| c.is_ascii_digit()) && !l.is_empty() => {
                    let n = l
                        .parse()
                        .map_err(|e| format!("allowlist line {}: bad line number: {e}", i + 1))?;
                    (p, Some(n))
                }
                _ => (path, None),
            };
            entries.push((rule.to_string(), suffix.to_string(), line_no));
        }
        Ok(Allowlist { entries })
    }

    /// Loads the allowlist from `path`; a missing file is an empty allowlist.
    ///
    /// # Errors
    ///
    /// Returns a message if the file exists but cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(format!("cannot read allowlist {}: {e}", path.display())),
        }
    }

    /// Whether the allowlist suppresses `rule` at `file:line`.
    pub fn permits(&self, rule: &str, file: &Path, line: u32) -> bool {
        let file = file.to_string_lossy();
        self.entries.iter().any(|(r, suffix, l)| {
            r == rule && file.ends_with(suffix.as_str()) && l.is_none_or(|n| n == line)
        })
    }
}

/// Crates whose non-test code must not call `unwrap()` (or undocumented
/// `expect()`): the simulation-correctness core.
const NO_UNWRAP_CRATES: [&str; 5] = ["cache", "policies", "offline", "core", "sim"];

/// A parsed source file ready for linting.
struct SourceFile {
    path: PathBuf,
    toks: Vec<Tok>,
    /// Token-index ranges belonging to `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    /// `(line, rule)` pairs from inline `audit:allow(rule)` comments.
    inline_allows: Vec<(u32, String)>,
}

impl SourceFile {
    fn parse(path: PathBuf, src: &str) -> Self {
        let toks = tokenize(src);
        let test_ranges = find_test_ranges(&toks);
        let inline_allows = src
            .lines()
            .enumerate()
            .filter_map(|(i, l)| {
                let marker = l.find("audit:allow(")?;
                let rest = &l[marker + "audit:allow(".len()..];
                let rule = rest.split(')').next()?.trim().to_string();
                Some((
                    u32::try_from(i).expect("allowlist lines fit in u32") + 1,
                    rule,
                ))
            })
            .collect();
        SourceFile {
            path,
            toks,
            test_ranges,
            inline_allows,
        }
    }

    fn in_test_code(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| (s..=e).contains(&tok_idx))
    }

    fn allowed_inline(&self, rule: &str, line: u32) -> bool {
        self.inline_allows
            .iter()
            .any(|(l, r)| *l == line && r == rule)
    }
}

/// Finds token ranges covered by `#[cfg(test)]`-annotated items: from the
/// attribute to the end of the item's brace block (or its terminating `;`).
fn find_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip to the end of the annotated item: brace-match the first `{`,
        // or stop at a `;` that precedes any `{` (e.g. `use` under cfg).
        let start = i;
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut seen_brace = false;
        while j < toks.len() {
            if toks[j].is_punct("{") {
                depth += 1;
                seen_brace = true;
            } else if toks[j].is_punct("}") {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    break;
                }
            } else if toks[j].is_punct(";") && !seen_brace {
                break;
            }
            j += 1;
        }
        ranges.push((start, j.min(toks.len().saturating_sub(1))));
        i = j + 1;
    }
    ranges
}

fn path_in_crates(path: &Path, crates: &[&str]) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    crates
        .iter()
        .any(|c| p.contains(&format!("crates/{c}/src/")))
}

/// Rule `no-unwrap`: `.unwrap()` is forbidden in the non-test code of the
/// correctness-core crates; `.expect(...)` must document its invariant with
/// a non-empty string literal.
fn rule_no_unwrap(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !path_in_crates(&f.path, &NO_UNWRAP_CRATES) {
        return;
    }
    for (i, w) in f.toks.windows(3).enumerate() {
        if f.in_test_code(i) || !w[0].is_punct(".") || !w[2].is_punct("(") {
            continue;
        }
        if w[1].is_ident("unwrap") {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[1].line,
                rule: "no-unwrap",
                message: "unwrap() in correctness-core library code; use \
                          expect(\"invariant\") or propagate the error"
                    .into(),
            });
        } else if w[1].is_ident("expect") {
            let documented = f
                .toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Str && !t.text.trim().is_empty());
            if !documented {
                out.push(Diagnostic {
                    file: f.path.clone(),
                    line: w[1].line,
                    rule: "no-unwrap",
                    message: "expect() without a literal invariant message in \
                              correctness-core library code"
                        .into(),
                });
            }
        }
    }
}

/// Rule `no-float-eq`: `==`/`!=` with a floating-point literal operand, in
/// any non-test workspace code (metrics must use tolerant comparisons).
fn rule_no_float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || f.in_test_code(i) {
            continue;
        }
        let float_adjacent = (i > 0 && f.toks[i - 1].kind == TokKind::Float)
            || f.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Float);
        if float_adjacent {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: t.line,
                rule: "no-float-eq",
                message: format!(
                    "exact float comparison `{}` against a float literal; \
                     compare with a tolerance or restructure the guard",
                    t.text
                ),
            });
        }
    }
}

/// Rule `no-narrowing-cast`: `as u8` / `as u16` in the cache crate's non-test
/// code — slot ids and entry counts must use `try_from` with a documented
/// invariant so silent truncation can't corrupt set indexing.
fn rule_no_narrowing_cast(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !path_in_crates(&f.path, &["cache"]) {
        return;
    }
    for (i, w) in f.toks.windows(2).enumerate() {
        if f.in_test_code(i) {
            continue;
        }
        if w[0].is_ident("as") && (w[1].is_ident("u8") || w[1].is_ident("u16")) {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[0].line,
                rule: "no-narrowing-cast",
                message: format!(
                    "unchecked narrowing `as {}` in slot/set arithmetic; use \
                     `{}::try_from(..).expect(\"invariant\")`",
                    w[1].text, w[1].text
                ),
            });
        }
    }
}

/// Crates whose non-test code must not grow queues or buffers without a
/// capacity bound: the long-running daemon, where unbounded growth under
/// client pressure is an OOM waiting to happen.
const BOUNDED_QUEUE_CRATES: [&str; 1] = ["serve"];

/// Rule `no-unbounded-queue`: two patterns.
///
/// 1. `mpsc::channel(..)` anywhere in non-test workspace code — the std
///    unbounded channel buffers without limit; use `sync_channel(cap)` or a
///    capacity-checked structure.
/// 2. `Vec::new()` / `VecDeque::new()` / `String::new()` / `HashMap::new()`
///    / `HashSet::new()` in the serve crate's non-test code — daemon-side
///    collections must be created with `with_capacity` (and guarded by an
///    explicit capacity check or eviction policy before growth) so
///    backpressure, not the allocator, absorbs load spikes.
fn rule_no_unbounded_queue(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, w) in f.toks.windows(4).enumerate() {
        if f.in_test_code(i) {
            continue;
        }
        if w[0].is_ident("mpsc")
            && w[1].is_punct("::")
            && w[2].is_ident("channel")
            && w[3].is_punct("(")
        {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[2].line,
                rule: "no-unbounded-queue",
                message: "mpsc::channel() buffers without bound; use \
                          sync_channel(capacity) or a capacity-checked queue"
                    .into(),
            });
        }
    }
    if !path_in_crates(&f.path, &BOUNDED_QUEUE_CRATES) {
        return;
    }
    for (i, w) in f.toks.windows(3).enumerate() {
        if f.in_test_code(i) || !w[1].is_punct("::") || !w[2].is_ident("new") {
            continue;
        }
        if w[0].is_ident("Vec")
            || w[0].is_ident("VecDeque")
            || w[0].is_ident("String")
            || w[0].is_ident("HashMap")
            || w[0].is_ident("HashSet")
        {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[0].line,
                rule: "no-unbounded-queue",
                message: format!(
                    "{}::new() in daemon code; size it with with_capacity and \
                     refuse growth past the bound (backpressure, not OOM)",
                    w[0].text
                ),
            });
        }
    }
}

/// Rule `unique-policy-names`: every `impl PwReplacementPolicy for T` block
/// that returns a string literal from `fn name` must use a distinct string.
fn rule_unique_policy_names(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<String, (PathBuf, u32, String)> = HashMap::new();
    for f in files {
        let toks = &f.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("impl") {
                continue;
            }
            // Find `PwReplacementPolicy for <Type>` within the next few
            // tokens (skipping generics and paths).
            let header_end = toks[i..]
                .iter()
                .position(|t| t.is_punct("{"))
                .map(|p| i + p)
                .unwrap_or(toks.len());
            let header = &toks[i..header_end];
            let is_policy_impl = header.iter().any(|t| t.is_ident("PwReplacementPolicy"))
                && header.iter().any(|t| t.is_ident("for"));
            if !is_policy_impl {
                continue;
            }
            let impl_for = header
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && t.text != "for")
                .map_or_else(|| "?".to_string(), |t| t.text.clone());
            // Brace-match the impl block, then find `fn name` and the first
            // string literal inside that fn's body.
            let mut depth = 0usize;
            let mut j = header_end;
            let mut impl_close = toks.len();
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        impl_close = j;
                        break;
                    }
                }
                j += 1;
            }
            let body = &toks[header_end..impl_close];
            let Some(fn_name_pos) = body
                .windows(2)
                .position(|w| w[0].is_ident("fn") && w[1].is_ident("name"))
            else {
                continue; // forwards name() without a literal — fine
            };
            let Some(lit) = body[fn_name_pos + 2..]
                .iter()
                .take_while(|t| !t.is_ident("fn"))
                .find(|t| t.kind == TokKind::Str)
            else {
                continue;
            };
            match seen.get(&lit.text) {
                Some((other_file, other_line, other_ty)) if *other_ty != impl_for => {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: lit.line,
                        rule: "unique-policy-names",
                        message: format!(
                            "policy name \"{}\" for `{}` duplicates the one declared for \
                             `{}` at {}:{}",
                            lit.text,
                            impl_for,
                            other_ty,
                            other_file.display(),
                            other_line
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    seen.insert(
                        lit.text.clone(),
                        (f.path.clone(), lit.line, impl_for.clone()),
                    );
                }
            }
        }
    }
}

/// Whether a path is exempt wholesale: tests, benches, examples, build
/// scripts and generated artifacts.
fn exempt_path(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.contains("/target/")
        || p.ends_with("build.rs")
}

/// Recursively collects the workspace's `.rs` files under `root`.
fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Runs the full lint pass over every workspace `.rs` file under `root`,
/// returning the diagnostics that survive the allowlist, sorted by file and
/// line.
///
/// # Errors
///
/// Returns a message if `root` contains no `.rs` files (almost certainly a
/// wrong `--root`).
pub fn run_lint(root: &Path, allowlist: &Allowlist) -> Result<Vec<Diagnostic>, String> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths);
    if paths.is_empty() {
        return Err(format!("no .rs files found under {}", root.display()));
    }
    let files: Vec<SourceFile> = paths
        .into_iter()
        .filter(|p| !exempt_path(p))
        .filter_map(|p| {
            let src = std::fs::read_to_string(&p).ok()?;
            let rel = p
                .strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| p.clone());
            Some(SourceFile::parse(rel, &src))
        })
        .collect();

    let mut diags = Vec::new();
    for f in &files {
        rule_no_unwrap(f, &mut diags);
        rule_no_float_eq(f, &mut diags);
        rule_no_narrowing_cast(f, &mut diags);
        rule_no_unbounded_queue(f, &mut diags);
    }
    rule_unique_policy_names(&files, &mut diags);

    let by_file: HashMap<PathBuf, &SourceFile> =
        files.iter().map(|f| (f.path.clone(), f)).collect();
    diags.retain(|d| {
        !allowlist.permits(d.rule, &d.file, d.line)
            && !by_file
                .get(&d.file)
                .is_some_and(|f| f.allowed_inline(d.rule, d.line))
    });
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from(path), src);
        let mut out = Vec::new();
        rule_no_unwrap(&f, &mut out);
        rule_no_float_eq(&f, &mut out);
        rule_no_narrowing_cast(&f, &mut out);
        rule_no_unbounded_queue(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_only_in_core_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(lint_one("crates/cache/src/a.rs", src).len(), 1);
        assert_eq!(lint_one("crates/trace/src/a.rs", src).len(), 0);
    }

    #[test]
    fn documented_expect_passes_bare_expect_fails() {
        let ok = "fn f(x: Option<u8>) -> u8 { x.expect(\"always set by new()\") }";
        assert_eq!(lint_one("crates/sim/src/a.rs", ok).len(), 0);
        let bare = "fn f(x: Option<u8>, m: &str) -> u8 { x.expect(m) }";
        assert_eq!(lint_one("crates/sim/src/a.rs", bare).len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}";
        assert_eq!(lint_one("crates/core/src/a.rs", src).len(), 0);
    }

    #[test]
    fn float_eq_flagged_everywhere() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        let d = lint_one("crates/power/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-float-eq");
        assert_eq!(
            lint_one("crates/power/src/a.rs", "fn f(x: u32) -> bool { x == 0 }").len(),
            0
        );
    }

    #[test]
    fn narrowing_cast_flagged_in_cache_only() {
        let src = "fn f(x: u32) -> u8 { x as u8 }";
        assert_eq!(lint_one("crates/cache/src/a.rs", src).len(), 1);
        assert_eq!(lint_one("crates/model/src/a.rs", src).len(), 0);
        // usize casts for indexing are fine.
        assert_eq!(
            lint_one(
                "crates/cache/src/a.rs",
                "fn f(x: u32) -> usize { x as usize }"
            )
            .len(),
            0
        );
    }

    #[test]
    fn unbounded_channel_flagged_everywhere() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }";
        let d = lint_one("crates/exec/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-unbounded-queue");
        // The bounded variant passes.
        assert_eq!(
            lint_one(
                "crates/exec/src/a.rs",
                "fn f() { let (tx, rx) = mpsc::sync_channel(8); }"
            )
            .len(),
            0
        );
    }

    #[test]
    fn uncapacitated_collections_flagged_in_serve_only() {
        for ty in ["Vec", "VecDeque", "String", "HashMap", "HashSet"] {
            let src = format!("fn f() {{ let q = {ty}::new(); }}");
            assert_eq!(
                lint_one("crates/serve/src/a.rs", &src).len(),
                1,
                "{ty} in serve"
            );
            assert_eq!(
                lint_one("crates/bench/src/a.rs", &src).len(),
                0,
                "{ty} elsewhere"
            );
        }
        // with_capacity passes, and test code is exempt.
        assert_eq!(
            lint_one(
                "crates/serve/src/a.rs",
                "fn f() { let q = VecDeque::with_capacity(8); }"
            )
            .len(),
            0
        );
        assert_eq!(
            lint_one(
                "crates/serve/src/a.rs",
                "fn lib() {}\n#[cfg(test)]\nmod tests { fn f() { let q = Vec::new(); } }"
            )
            .len(),
            0
        );
    }

    #[test]
    fn duplicate_policy_names_reported() {
        let a = SourceFile::parse(
            PathBuf::from("crates/policies/src/a.rs"),
            "impl PwReplacementPolicy for A { fn name(&self) -> &'static str { \"LRU\" } }",
        );
        let b = SourceFile::parse(
            PathBuf::from("crates/policies/src/b.rs"),
            "impl PwReplacementPolicy for B { fn name(&self) -> &'static str { \"LRU\" } }",
        );
        let mut out = Vec::new();
        rule_unique_policy_names(&[a, b], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unique-policy-names");
        assert!(out[0].message.contains("duplicates"));
    }

    #[test]
    fn forwarding_name_impls_are_ignored() {
        let f = SourceFile::parse(
            PathBuf::from("crates/cache/src/w.rs"),
            "impl<P: PwReplacementPolicy> PwReplacementPolicy for Wrap<P> {\n\
             fn name(&self) -> &'static str { self.inner.name() } }",
        );
        let mut out = Vec::new();
        rule_unique_policy_names(&[f], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn allowlist_suffix_and_line_forms() {
        let al =
            Allowlist::parse("# comment\nno-unwrap crates/cache/src/a.rs\nno-float-eq b.rs:17\n")
                .expect("parses");
        assert!(al.permits("no-unwrap", Path::new("crates/cache/src/a.rs"), 3));
        assert!(!al.permits("no-float-eq", Path::new("crates/cache/src/a.rs"), 3));
        assert!(al.permits("no-float-eq", Path::new("x/b.rs"), 17));
        assert!(!al.permits("no-float-eq", Path::new("x/b.rs"), 18));
        assert!(Allowlist::parse("too many words here\n").is_err());
    }

    #[test]
    fn inline_allow_comment_suppresses() {
        let f = SourceFile::parse(
            PathBuf::from("crates/cache/src/a.rs"),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // audit:allow(no-unwrap)",
        );
        assert!(f.allowed_inline("no-unwrap", 1));
        assert!(!f.allowed_inline("no-float-eq", 1));
    }
}
