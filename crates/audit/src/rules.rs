//! The audit's lint rules, the allowlist that configures them, and the
//! workspace walker that applies them.
//!
//! v2 layers a call-graph analysis (see [`crate::callgraph`] and
//! [`crate::reach`]) on top of the original token-pattern rules, and adds
//! two determinism rules (`no-std-hashmap`, `no-ambient-time`). All
//! diagnostics flow through the same [`Allowlist`] + inline-comment
//! suppression machinery and come back in canonical order (file, line,
//! rule), ready for byte-stable JSON emission.

use crate::callgraph::{self, FileView};
use crate::lexer::{tokenize_full, Tok, TokKind};
use crate::parser::{parse_items, FileItems};
use crate::reach;
use std::path::{Path, PathBuf};
use uopcache_model::hash::FastHashMap;

/// A single lint finding.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Diagnostic {
    /// Path of the offending file (as walked, workspace-relative when the
    /// audit is run from the workspace root).
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: u32,
    /// Rule identifier: token rules (`no-unwrap`, `no-float-eq`,
    /// `no-narrowing-cast`, `no-unbounded-queue`, `unique-policy-names`,
    /// `no-std-hashmap`, `no-ambient-time`), graph rules
    /// (`hot-path-alloc`, `unordered-emission`, `lock-order`,
    /// `lock-across-channel`, `blocking-under-lock`, `unaccounted-spawn`),
    /// and the allowlist's own
    /// hygiene rule (`stale-allowlist`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// One allowlist entry.
#[derive(Clone, Debug)]
struct AllowEntry {
    rule: String,
    suffix: String,
    line: Option<u32>,
    /// Mandatory justification (kept for documentation; its presence is
    /// what the parser enforces).
    #[allow(dead_code)]
    reason: String,
    /// Optional `YYYY-MM-DD` expiry; past it the entry stops suppressing.
    expires: Option<String>,
    /// Line in the allowlist file (for `stale-allowlist` diagnostics).
    src_line: u32,
}

/// Rule suppressions parsed from an allowlist file.
///
/// Format, one entry per line (full-line `#` comments and blanks allowed):
///
/// ```text
/// <rule> <path-suffix>[:<line>] reason: <why this is justified> [expires: YYYY-MM-DD]
/// ```
///
/// The `reason:` field is mandatory — an unexplained suppression is a
/// future foot-gun. `expires:` makes a suppression temporary: past the
/// date the entry stops suppressing and is itself reported
/// (`stale-allowlist`), as is any entry that no longer matches any
/// diagnostic.
///
/// In addition, a source **comment** containing `audit:allow(<rule>)`
/// suppresses that rule on that line without an allowlist entry. Only real
/// comments count — the marker inside a string literal does nothing.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    /// Where the entries came from, for `stale-allowlist` spans.
    source: PathBuf,
}

impl Allowlist {
    /// Parses the allowlist text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line (bad shape,
    /// missing `reason:`, or malformed `expires:` date).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((rule, rest)) = line.split_once(char::is_whitespace) else {
                return Err(format!(
                    "allowlist line {line_no}: expected `<rule> <path> reason: ...`"
                ));
            };
            let rest = rest.trim_start();
            let Some((path, rest)) = rest.split_once(char::is_whitespace) else {
                return Err(format!(
                    "allowlist line {line_no}: missing mandatory `reason:` field"
                ));
            };
            let rest = rest.trim_start();
            let Some(after_kw) = rest.strip_prefix("reason:") else {
                return Err(format!(
                    "allowlist line {line_no}: expected `reason:` after the path, got `{rest}`"
                ));
            };
            let (reason, expires) = match after_kw.rsplit_once("expires:") {
                Some((r, d)) => {
                    let d = d.trim();
                    let ok = d.len() == 10
                        && d.bytes().enumerate().all(|(k, b)| {
                            if k == 4 || k == 7 {
                                b == b'-'
                            } else {
                                b.is_ascii_digit()
                            }
                        });
                    if !ok {
                        return Err(format!(
                            "allowlist line {line_no}: `expires:` wants YYYY-MM-DD, got `{d}`"
                        ));
                    }
                    (r.trim(), Some(d.to_string()))
                }
                None => (after_kw.trim(), None),
            };
            if reason.is_empty() {
                return Err(format!(
                    "allowlist line {line_no}: `reason:` must not be empty"
                ));
            }
            let (suffix, entry_line) = match path.rsplit_once(':') {
                Some((p, l)) if !l.is_empty() && l.chars().all(|c| c.is_ascii_digit()) => {
                    let n = l
                        .parse()
                        .map_err(|e| format!("allowlist line {line_no}: bad line number: {e}"))?;
                    (p, Some(n))
                }
                _ => (path, None),
            };
            entries.push(AllowEntry {
                rule: rule.to_string(),
                suffix: suffix.to_string(),
                line: entry_line,
                reason: reason.to_string(),
                expires,
                src_line: line_no,
            });
        }
        Ok(Allowlist {
            entries,
            source: PathBuf::from("audit.allowlist"),
        })
    }

    /// Loads the allowlist from `path`; a missing file is an empty allowlist.
    ///
    /// # Errors
    ///
    /// Returns a message if the file exists but cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let mut al = Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
                al.source = path.to_path_buf();
                Ok(al)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(format!("cannot read allowlist {}: {e}", path.display())),
        }
    }

    /// Filters `diags` through the allowlist and appends `stale-allowlist`
    /// diagnostics for entries that are expired or matched nothing.
    /// `today` is an ISO `YYYY-MM-DD` date (see [`today_utc`]).
    fn apply(&self, mut diags: Vec<Diagnostic>, today: &str) -> Vec<Diagnostic> {
        let mut matched = vec![false; self.entries.len()];
        diags.retain(|d| {
            let file = d.file.to_string_lossy().replace('\\', "/");
            let mut suppressed = false;
            for (i, e) in self.entries.iter().enumerate() {
                if e.rule == d.rule
                    && file.ends_with(e.suffix.as_str())
                    && e.line.is_none_or(|n| n == d.line)
                {
                    matched[i] = true;
                    if e.expires.as_deref().is_none_or(|x| today <= x) {
                        suppressed = true;
                    }
                }
            }
            !suppressed
        });
        for (i, e) in self.entries.iter().enumerate() {
            let expired = e.expires.as_deref().is_some_and(|x| today > x);
            if expired {
                diags.push(Diagnostic {
                    file: self.source.clone(),
                    line: e.src_line,
                    rule: "stale-allowlist",
                    message: format!(
                        "entry `{} {}` expired on {}; fix the finding or renew the date",
                        e.rule,
                        e.suffix,
                        e.expires.as_deref().unwrap_or("?")
                    ),
                });
            } else if !matched[i] {
                diags.push(Diagnostic {
                    file: self.source.clone(),
                    line: e.src_line,
                    rule: "stale-allowlist",
                    message: format!(
                        "entry `{} {}` no longer matches any diagnostic; delete it",
                        e.rule, e.suffix
                    ),
                });
            }
        }
        diags
    }
}

/// Today's date in UTC as `YYYY-MM-DD` (civil-from-days, no deps).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = i64::try_from(secs / 86_400).unwrap_or(0);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Crates whose non-test code must not call `unwrap()` (or undocumented
/// `expect()`): the simulation-correctness core.
const NO_UNWRAP_CRATES: [&str; 5] = ["cache", "policies", "offline", "core", "sim"];

/// Crates whose observable behaviour must be bit-deterministic: bare std
/// `HashMap`/`HashSet` (randomly seeded SipHash → run-dependent iteration
/// order) are forbidden in favour of `uopcache_model::hash::FastHashMap`.
/// `serve` is deliberately absent: it hashes *externally supplied* job ids,
/// where the DoS-resistant std hasher is the right tool.
const DETERMINISTIC_CRATES: [&str; 14] = [
    "model", "cache", "policies", "offline", "core", "sim", "trace", "flow", "power", "obs",
    "bench", "cli", "exec", "audit",
];

/// Crates that must not read ambient time (`Instant::now`,
/// `SystemTime::now`) outside the `exec::Clock` seam. `serve` is exempt:
/// wall-clock deadlines against real clients are its job.
const NO_AMBIENT_TIME_CRATES: [&str; 11] = [
    "model", "cache", "policies", "offline", "core", "sim", "trace", "flow", "power", "obs", "exec",
];

/// A parsed source file ready for linting.
struct SourceFile {
    path: PathBuf,
    toks: Vec<Tok>,
    items: FileItems,
    /// Token-index ranges belonging to `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    /// `(line, rule)` pairs from inline `audit:allow(rule)` comments.
    inline_allows: Vec<(u32, String)>,
}

impl SourceFile {
    fn parse(path: PathBuf, src: &str) -> Self {
        let lexed = tokenize_full(src);
        let test_ranges = find_test_ranges(&lexed.toks);
        // Inline allows come from real comments only: the marker inside a
        // string literal is data, not a suppression.
        let mut inline_allows = Vec::new();
        for (line, text) in &lexed.comments {
            let mut rest = text.as_str();
            while let Some(at) = rest.find("audit:allow(") {
                rest = &rest[at + "audit:allow(".len()..];
                if let Some(rule) = rest.split(')').next() {
                    inline_allows.push((*line, rule.trim().to_string()));
                }
            }
        }
        let items = parse_items(&lexed.toks, &lexed.comments);
        SourceFile {
            path,
            toks: lexed.toks,
            items,
            test_ranges,
            inline_allows,
        }
    }

    fn in_test_code(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| (s..=e).contains(&tok_idx))
    }

    fn allowed_inline(&self, rule: &str, line: u32) -> bool {
        self.inline_allows
            .iter()
            .any(|(l, r)| *l == line && r == rule)
    }
}

/// Finds token ranges covered by `#[cfg(test)]`-annotated items: from the
/// attribute to the end of the item's brace block (or its terminating `;`).
fn find_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip to the end of the annotated item: brace-match the first `{`,
        // or stop at a `;` that precedes any `{` (e.g. `use` under cfg).
        let start = i;
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut seen_brace = false;
        while j < toks.len() {
            if toks[j].is_punct("{") {
                depth += 1;
                seen_brace = true;
            } else if toks[j].is_punct("}") {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    break;
                }
            } else if toks[j].is_punct(";") && !seen_brace {
                break;
            }
            j += 1;
        }
        ranges.push((start, j.min(toks.len().saturating_sub(1))));
        i = j + 1;
    }
    ranges
}

fn path_in_crates(path: &Path, crates: &[&str]) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    crates
        .iter()
        .any(|c| p.contains(&format!("crates/{c}/src/")))
}

/// Rule `no-unwrap`: `.unwrap()` is forbidden in the non-test code of the
/// correctness-core crates; `.expect(...)` must document its invariant with
/// a non-empty string literal.
fn rule_no_unwrap(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !path_in_crates(&f.path, &NO_UNWRAP_CRATES) {
        return;
    }
    for (i, w) in f.toks.windows(3).enumerate() {
        if f.in_test_code(i) || !w[0].is_punct(".") || !w[2].is_punct("(") {
            continue;
        }
        if w[1].is_ident("unwrap") {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[1].line,
                rule: "no-unwrap",
                message: "unwrap() in correctness-core library code; use \
                          expect(\"invariant\") or propagate the error"
                    .into(),
            });
        } else if w[1].is_ident("expect") {
            let documented = f
                .toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Str && !t.text.trim().is_empty());
            if !documented {
                out.push(Diagnostic {
                    file: f.path.clone(),
                    line: w[1].line,
                    rule: "no-unwrap",
                    message: "expect() without a literal invariant message in \
                              correctness-core library code"
                        .into(),
                });
            }
        }
    }
}

/// Rule `no-float-eq`: `==`/`!=` with a floating-point literal operand, in
/// any non-test workspace code (metrics must use tolerant comparisons).
fn rule_no_float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || f.in_test_code(i) {
            continue;
        }
        let float_adjacent = (i > 0 && f.toks[i - 1].kind == TokKind::Float)
            || f.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Float);
        if float_adjacent {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: t.line,
                rule: "no-float-eq",
                message: format!(
                    "exact float comparison `{}` against a float literal; \
                     compare with a tolerance or restructure the guard",
                    t.text
                ),
            });
        }
    }
}

/// Rule `no-narrowing-cast`: `as u8` / `as u16` in the cache crate's non-test
/// code — slot ids and entry counts must use `try_from` with a documented
/// invariant so silent truncation can't corrupt set indexing.
fn rule_no_narrowing_cast(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !path_in_crates(&f.path, &["cache"]) {
        return;
    }
    for (i, w) in f.toks.windows(2).enumerate() {
        if f.in_test_code(i) {
            continue;
        }
        if w[0].is_ident("as") && (w[1].is_ident("u8") || w[1].is_ident("u16")) {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[0].line,
                rule: "no-narrowing-cast",
                message: format!(
                    "unchecked narrowing `as {}` in slot/set arithmetic; use \
                     `{}::try_from(..).expect(\"invariant\")`",
                    w[1].text, w[1].text
                ),
            });
        }
    }
}

/// Crates whose non-test code must not grow queues or buffers without a
/// capacity bound: the long-running daemon, where unbounded growth under
/// client pressure is an OOM waiting to happen.
const BOUNDED_QUEUE_CRATES: [&str; 1] = ["serve"];

/// Rule `no-unbounded-queue`: two patterns.
///
/// 1. `mpsc::channel(..)` anywhere in non-test workspace code — the std
///    unbounded channel buffers without limit; use `sync_channel(cap)` or a
///    capacity-checked structure.
/// 2. `Vec::new()` / `VecDeque::new()` / `String::new()` / `HashMap::new()`
///    / `HashSet::new()` in the serve crate's non-test code — daemon-side
///    collections must be created with `with_capacity` (and guarded by an
///    explicit capacity check or eviction policy before growth) so
///    backpressure, not the allocator, absorbs load spikes.
fn rule_no_unbounded_queue(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, w) in f.toks.windows(4).enumerate() {
        if f.in_test_code(i) {
            continue;
        }
        if w[0].is_ident("mpsc")
            && w[1].is_punct("::")
            && w[2].is_ident("channel")
            && w[3].is_punct("(")
        {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[2].line,
                rule: "no-unbounded-queue",
                message: "mpsc::channel() buffers without bound; use \
                          sync_channel(capacity) or a capacity-checked queue"
                    .into(),
            });
        }
    }
    if !path_in_crates(&f.path, &BOUNDED_QUEUE_CRATES) {
        return;
    }
    for (i, w) in f.toks.windows(3).enumerate() {
        if f.in_test_code(i) || !w[1].is_punct("::") || !w[2].is_ident("new") {
            continue;
        }
        if w[0].is_ident("Vec")
            || w[0].is_ident("VecDeque")
            || w[0].is_ident("String")
            || w[0].is_ident("HashMap")
            || w[0].is_ident("HashSet")
        {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[0].line,
                rule: "no-unbounded-queue",
                message: format!(
                    "{}::new() in daemon code; size it with with_capacity and \
                     refuse growth past the bound (backpressure, not OOM)",
                    w[0].text
                ),
            });
        }
    }
}

/// Rule `no-std-hashmap`: bare `HashMap`/`HashSet` identifiers in the
/// deterministic crates' non-test code. Std's default hasher is seeded per
/// process, so iteration order varies run to run; every map whose contents
/// can reach output must be a `FastHashMap`/`FastHashSet`
/// (`uopcache_model::hash`), which hashes deterministically.
fn rule_no_std_hashmap(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !path_in_crates(&f.path, &DETERMINISTIC_CRATES) {
        return;
    }
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        if f.in_test_code(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: t.line,
                rule: "no-std-hashmap",
                message: format!(
                    "std `{}` is randomly seeded (iteration order varies per \
                     run); use `uopcache_model::hash::Fast{}` in deterministic \
                     simulation code",
                    t.text, t.text
                ),
            });
        }
    }
}

/// Rule `no-ambient-time`: `Instant::now()` / `SystemTime::now()` outside
/// the `exec::Clock` seam (`crates/exec/src/clock.rs`), in the simulation
/// crates' non-test code. Ambient time reads make behaviour untestable and
/// non-reproducible; route them through a `Clock` implementation.
fn rule_no_ambient_time(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !path_in_crates(&f.path, &NO_AMBIENT_TIME_CRATES) {
        return;
    }
    let p = f.path.to_string_lossy().replace('\\', "/");
    if p.ends_with("crates/exec/src/clock.rs") {
        return; // the seam itself
    }
    for (i, w) in f.toks.windows(4).enumerate() {
        if f.in_test_code(i) {
            continue;
        }
        if (w[0].is_ident("Instant") || w[0].is_ident("SystemTime"))
            && w[1].is_punct("::")
            && w[2].is_ident("now")
            && w[3].is_punct("(")
        {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: w[2].line,
                rule: "no-ambient-time",
                message: format!(
                    "`{}::now()` outside the `exec::Clock` seam; inject a \
                     `Clock` (or justify wall-clock use with an inline allow)",
                    w[0].text
                ),
            });
        }
    }
}

/// Rule `unique-policy-names`: every `impl PwReplacementPolicy for T` block
/// that returns a string literal from `fn name` must use a distinct string.
fn rule_unique_policy_names(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut seen: FastHashMap<String, (PathBuf, u32, String)> = FastHashMap::default();
    for f in files {
        let toks = &f.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("impl") {
                continue;
            }
            // Find `PwReplacementPolicy for <Type>` within the next few
            // tokens (skipping generics and paths).
            let header_end = toks[i..]
                .iter()
                .position(|t| t.is_punct("{"))
                .map(|p| i + p)
                .unwrap_or(toks.len());
            let header = &toks[i..header_end];
            let is_policy_impl = header.iter().any(|t| t.is_ident("PwReplacementPolicy"))
                && header.iter().any(|t| t.is_ident("for"));
            if !is_policy_impl {
                continue;
            }
            let impl_for = header
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && t.text != "for")
                .map_or_else(|| "?".to_string(), |t| t.text.clone());
            // Brace-match the impl block, then find `fn name` and the first
            // string literal inside that fn's body.
            let mut depth = 0usize;
            let mut j = header_end;
            let mut impl_close = toks.len();
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        impl_close = j;
                        break;
                    }
                }
                j += 1;
            }
            let body = &toks[header_end..impl_close];
            let Some(fn_name_pos) = body
                .windows(2)
                .position(|w| w[0].is_ident("fn") && w[1].is_ident("name"))
            else {
                continue; // forwards name() without a literal — fine
            };
            let Some(lit) = body[fn_name_pos + 2..]
                .iter()
                .take_while(|t| !t.is_ident("fn"))
                .find(|t| t.kind == TokKind::Str)
            else {
                continue;
            };
            match seen.get(&lit.text) {
                Some((other_file, other_line, other_ty)) if *other_ty != impl_for => {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: lit.line,
                        rule: "unique-policy-names",
                        message: format!(
                            "policy name \"{}\" for `{}` duplicates the one declared for \
                             `{}` at {}:{}",
                            lit.text,
                            impl_for,
                            other_ty,
                            other_file.display(),
                            other_line
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    seen.insert(
                        lit.text.clone(),
                        (f.path.clone(), lit.line, impl_for.clone()),
                    );
                }
            }
        }
    }
}

/// Whether a path is exempt wholesale: tests, benches, examples, build
/// scripts and generated artifacts.
fn exempt_path(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.contains("/target/")
        || p.ends_with("build.rs")
}

/// Recursively collects the workspace's `.rs` files under `root`.
fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Reads all lintable sources under `root`, workspace-relative.
fn read_sources(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths);
    if paths.is_empty() {
        return Err(format!("no .rs files found under {}", root.display()));
    }
    Ok(paths
        .into_iter()
        .filter(|p| !exempt_path(p))
        .filter_map(|p| {
            let src = std::fs::read_to_string(&p).ok()?;
            let rel = p
                .strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| p.clone());
            Some((rel, src))
        })
        .collect())
}

/// The result of a full audit run.
pub struct AuditReport {
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Files linted.
    pub files: usize,
    /// Call-graph nodes (parsed function bodies).
    pub functions: usize,
    /// Call-graph edges.
    pub edges: usize,
}

/// Runs the full lint pass — token rules, call-graph passes, allowlist —
/// over every workspace `.rs` file under `root`. `today` (ISO
/// `YYYY-MM-DD`) drives `expires:` handling; see [`today_utc`].
///
/// # Errors
///
/// Returns a message if `root` contains no `.rs` files (almost certainly a
/// wrong `--root`).
pub fn run_lint(root: &Path, allowlist: &Allowlist, today: &str) -> Result<AuditReport, String> {
    let sources = read_sources(root)?;
    Ok(run_lint_sources(sources, allowlist, today))
}

/// [`run_lint`] over in-memory sources — the seam fixture tests use to
/// assert each rule fires (and stays quiet) on known snippets.
pub fn run_lint_sources(
    sources: Vec<(PathBuf, String)>,
    allowlist: &Allowlist,
    today: &str,
) -> AuditReport {
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(p, s)| SourceFile::parse(p, &s))
        .collect();

    let mut diags = Vec::new();
    for f in &files {
        rule_no_unwrap(f, &mut diags);
        rule_no_float_eq(f, &mut diags);
        rule_no_narrowing_cast(f, &mut diags);
        rule_no_unbounded_queue(f, &mut diags);
        rule_no_std_hashmap(f, &mut diags);
        rule_no_ambient_time(f, &mut diags);
    }
    rule_unique_policy_names(&files, &mut diags);

    let views: Vec<FileView> = files
        .iter()
        .map(|f| FileView {
            path: &f.path,
            toks: &f.toks,
            items: &f.items,
            test_ranges: &f.test_ranges,
        })
        .collect();
    let graph = callgraph::build(&views);
    diags.extend(reach::analyze(&graph, &views));

    let by_file: FastHashMap<PathBuf, &SourceFile> =
        files.iter().map(|f| (f.path.clone(), f)).collect();
    diags.retain(|d| {
        !by_file
            .get(&d.file)
            .is_some_and(|f| f.allowed_inline(d.rule, d.line))
    });
    let mut diags = allowlist.apply(diags, today);
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    diags.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    AuditReport {
        diagnostics: diags,
        files: files.len(),
        functions: graph.nodes.len(),
        edges: graph.edges.iter().map(Vec::len).sum(),
    }
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_path(p: &Path) -> String {
    json_escape(&p.to_string_lossy().replace('\\', "/"))
}

/// Canonical JSON for a diagnostic list: `schema_version: 1`, one
/// diagnostic per line, already in (file, line, rule) order — byte-stable
/// so CI can diff it against a committed golden.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_path(&d.file),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        ));
    }
    if diags.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Builds the workspace call graph under `root` and dumps it as canonical
/// JSON: nodes (with hot-root/exempt flags) and index-based edges, both in
/// deterministic order. Future lints — and the kernel-specialization work —
/// consume this.
///
/// # Errors
///
/// Returns a message if `root` contains no `.rs` files.
pub fn callgraph_json(root: &Path) -> Result<String, String> {
    let sources = read_sources(root)?;
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(p, s)| SourceFile::parse(p, &s))
        .collect();
    let views: Vec<FileView> = files
        .iter()
        .map(|f| FileView {
            path: &f.path,
            toks: &f.toks,
            items: &f.items,
            test_ranges: &f.test_ranges,
        })
        .collect();
    let g = callgraph::build(&views);
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"nodes\": [");
    for (i, n) in g.nodes.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"file\": \"{}\", \"line\": {}, \"hot_root\": {}, \
             \"alloc_exempt\": {}, \"test\": {}}}",
            json_escape(&n.display_name()),
            json_path(views[n.file].path),
            n.line,
            reach::is_hot_root(&g, i),
            reach::is_alloc_exempt(&g, i),
            n.in_test
        ));
    }
    out.push_str(if g.nodes.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"edges\": [");
    let mut first = true;
    for (from, callees) in g.edges.iter().enumerate() {
        for &to in callees {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("    [{from}, {to}]"));
        }
    }
    if first {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(PathBuf::from(path), src);
        let mut out = Vec::new();
        rule_no_unwrap(&f, &mut out);
        rule_no_float_eq(&f, &mut out);
        rule_no_narrowing_cast(&f, &mut out);
        rule_no_unbounded_queue(&f, &mut out);
        rule_no_std_hashmap(&f, &mut out);
        rule_no_ambient_time(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_only_in_core_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(lint_one("crates/cache/src/a.rs", src).len(), 1);
        assert_eq!(lint_one("crates/serve/src/a.rs", src).len(), 0);
    }

    #[test]
    fn documented_expect_passes_bare_expect_fails() {
        let ok = "fn f(x: Option<u8>) -> u8 { x.expect(\"always set by new()\") }";
        assert_eq!(lint_one("crates/sim/src/a.rs", ok).len(), 0);
        let bare = "fn f(x: Option<u8>, m: &str) -> u8 { x.expect(m) }";
        assert_eq!(lint_one("crates/sim/src/a.rs", bare).len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}";
        assert_eq!(lint_one("crates/core/src/a.rs", src).len(), 0);
    }

    #[test]
    fn float_eq_flagged_everywhere() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        let d = lint_one("crates/power/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-float-eq");
        assert_eq!(
            lint_one("crates/power/src/a.rs", "fn f(x: u32) -> bool { x == 0 }").len(),
            0
        );
    }

    #[test]
    fn narrowing_cast_flagged_in_cache_only() {
        let src = "fn f(x: u32) -> u8 { x as u8 }";
        assert_eq!(lint_one("crates/cache/src/a.rs", src).len(), 1);
        assert_eq!(lint_one("crates/model/src/a.rs", src).len(), 0);
        // usize casts for indexing are fine.
        assert_eq!(
            lint_one(
                "crates/cache/src/a.rs",
                "fn f(x: u32) -> usize { x as usize }"
            )
            .len(),
            0
        );
    }

    #[test]
    fn unbounded_channel_flagged_everywhere() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }";
        let d = lint_one("crates/exec/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-unbounded-queue");
        // The bounded variant passes.
        assert_eq!(
            lint_one(
                "crates/exec/src/a.rs",
                "fn f() { let (tx, rx) = mpsc::sync_channel(8); }"
            )
            .len(),
            0
        );
    }

    #[test]
    fn uncapacitated_collections_flagged_in_serve_only() {
        for ty in ["Vec", "VecDeque", "String"] {
            let src = format!("fn f() {{ let q = {ty}::new(); }}");
            assert_eq!(
                lint_one("crates/serve/src/a.rs", &src).len(),
                1,
                "{ty} in serve"
            );
            assert_eq!(
                lint_one("crates/flow/src/a.rs", &src).len(),
                0,
                "{ty} elsewhere"
            );
        }
        // with_capacity passes, and test code is exempt.
        assert_eq!(
            lint_one(
                "crates/serve/src/a.rs",
                "fn f() { let q = VecDeque::with_capacity(8); }"
            )
            .len(),
            0
        );
        assert_eq!(
            lint_one(
                "crates/serve/src/a.rs",
                "fn lib() {}\n#[cfg(test)]\nmod tests { fn f() { let q = Vec::new(); } }"
            )
            .len(),
            0
        );
    }

    #[test]
    fn std_hashmap_flagged_in_deterministic_crates() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let d = lint_one("crates/policies/src/a.rs", src);
        assert!(d.iter().all(|d| d.rule == "no-std-hashmap"));
        assert_eq!(d.len(), 3);
        // serve is excluded: it hashes untrusted input. (Vec::new absent so
        // no-unbounded-queue stays quiet; HashMap::new still trips it.)
        let d = lint_one("crates/serve/src/a.rs", src);
        assert!(d.iter().all(|d| d.rule == "no-unbounded-queue"));
        // The blessed alias does not trip the rule.
        assert_eq!(
            lint_one(
                "crates/policies/src/a.rs",
                "use uopcache_model::hash::FastHashMap;\nfn f() { let m: FastHashMap<u32, u32> = FastHashMap::default(); }"
            )
            .len(),
            0
        );
    }

    #[test]
    fn ambient_time_flagged_outside_clock_seam() {
        let src = "fn f() -> std::time::Instant { Instant::now() }";
        let d = lint_one("crates/core/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-ambient-time");
        // The seam file and the serve crate are exempt.
        assert_eq!(lint_one("crates/exec/src/clock.rs", src).len(), 0);
        assert_eq!(lint_one("crates/serve/src/a.rs", src).len(), 0);
    }

    #[test]
    fn duplicate_policy_names_reported() {
        let a = SourceFile::parse(
            PathBuf::from("crates/policies/src/a.rs"),
            "impl PwReplacementPolicy for A { fn name(&self) -> &'static str { \"LRU\" } }",
        );
        let b = SourceFile::parse(
            PathBuf::from("crates/policies/src/b.rs"),
            "impl PwReplacementPolicy for B { fn name(&self) -> &'static str { \"LRU\" } }",
        );
        let mut out = Vec::new();
        rule_unique_policy_names(&[a, b], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unique-policy-names");
        assert!(out[0].message.contains("duplicates"));
    }

    #[test]
    fn forwarding_name_impls_are_ignored() {
        let f = SourceFile::parse(
            PathBuf::from("crates/cache/src/w.rs"),
            "impl<P: PwReplacementPolicy> PwReplacementPolicy for Wrap<P> {\n\
             fn name(&self) -> &'static str { self.inner.name() } }",
        );
        let mut out = Vec::new();
        rule_unique_policy_names(&[f], &mut out);
        assert!(out.is_empty());
    }

    fn diag(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn allowlist_v2_suffix_line_reason_and_expiry() {
        let al = Allowlist::parse(
            "# comment\n\
             no-unwrap crates/cache/src/a.rs reason: legacy seam, tracked in DESIGN.md\n\
             no-float-eq b.rs:17 reason: tolerance checked one line above expires: 2099-01-01\n",
        )
        .expect("parses");
        let out = al.apply(
            vec![
                diag("no-unwrap", "crates/cache/src/a.rs", 3),
                diag("no-float-eq", "x/b.rs", 17),
                diag("no-float-eq", "x/b.rs", 18),
            ],
            "2026-01-01",
        );
        // Line 18 survives; the two matches are suppressed; nothing stale.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 18);
    }

    #[test]
    fn allowlist_requires_reason() {
        assert!(Allowlist::parse("no-unwrap crates/cache/src/a.rs\n").is_err());
        assert!(Allowlist::parse("no-unwrap a.rs reason:\n").is_err());
        assert!(Allowlist::parse("no-unwrap a.rs reason: ok expires: soon\n").is_err());
    }

    #[test]
    fn expired_and_unmatched_entries_are_stale() {
        let al = Allowlist::parse(
            "no-unwrap a.rs reason: short-lived expires: 2020-01-01\n\
             no-float-eq never.rs reason: obsolete\n",
        )
        .expect("parses");
        let out = al.apply(vec![diag("no-unwrap", "x/a.rs", 1)], "2026-01-01");
        // The expired entry no longer suppresses, and both entries are
        // reported stale.
        assert_eq!(out.len(), 3);
        let stale: Vec<_> = out.iter().filter(|d| d.rule == "stale-allowlist").collect();
        assert_eq!(stale.len(), 2);
        assert!(stale[0].message.contains("expired") || stale[1].message.contains("expired"));
    }

    #[test]
    fn inline_allow_comment_suppresses_but_string_contents_do_not() {
        let f = SourceFile::parse(
            PathBuf::from("crates/cache/src/a.rs"),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // audit:allow(no-unwrap)\n\
             fn g() -> &'static str { \"audit:allow(no-unwrap)\" }",
        );
        assert!(f.allowed_inline("no-unwrap", 1));
        assert!(!f.allowed_inline("no-float-eq", 1));
        // The marker inside a string literal is data, not a suppression.
        assert!(!f.allowed_inline("no-unwrap", 2));
    }

    #[test]
    fn diagnostics_json_is_canonical() {
        assert_eq!(
            diagnostics_json(&[]),
            "{\n  \"schema_version\": 1,\n  \"diagnostics\": []\n}\n"
        );
        let js = diagnostics_json(&[diag("no-unwrap", "crates/cache/src/a.rs", 3)]);
        assert!(js.contains("\"schema_version\": 1"));
        assert!(js
            .contains("\"file\": \"crates/cache/src/a.rs\", \"line\": 3, \"rule\": \"no-unwrap\""));
    }

    #[test]
    fn today_utc_is_iso_shaped() {
        let t = today_utc();
        assert_eq!(t.len(), 10);
        assert_eq!(t.as_bytes()[4], b'-');
        assert_eq!(t.as_bytes()[7], b'-');
        assert!(t.as_str() >= "2024-01-01", "{t}");
    }
}
