//! Decision-stream identification: which policy produced a captured run?
//!
//! The identification protocol is CacheQuery-flavoured but offline and
//! exact: replay the *same* trace through every candidate policy under the
//! same geometry, digest each replay's full decision stream with
//! [`StreamDigest`] (which pins eviction victims, not just verdicts), and
//! compare against the digest captured from the run under investigation.
//! Because every registered policy is deterministic for a fixed seed, a
//! digest match means the candidate makes byte-identical decisions on this
//! trace — and a unique match names the generating policy.
//!
//! Two candidates can still tie when the trace never forces them to
//! disagree (e.g. a trace whose working set fits in one way never exercises
//! victim selection). The verdict is explicit about this:
//! [`IdentifyVerdict::Ambiguous`] lists every matching candidate rather
//! than guessing, and [`IdentifyVerdict::Unknown`] means the stream matches
//! no registered policy at all.

use uopcache_cache::{PwReplacementPolicy, UopCache};
use uopcache_model::{LookupTrace, UopCacheConfig};
use uopcache_obs::{DigestRecorder, StreamDigest};

/// One candidate's name and the digest its replay produced.
#[derive(Clone, Debug)]
pub struct CandidateDigest {
    /// The candidate's canonical policy label.
    pub name: String,
    /// The digest of the candidate's decision stream on the probe trace.
    pub digest: StreamDigest,
}

/// The outcome of matching a captured digest against the candidate table.
#[derive(Clone, Eq, PartialEq, Debug)]
pub enum IdentifyVerdict {
    /// Exactly one candidate reproduces the stream.
    Unique(String),
    /// Several candidates reproduce the stream — the probe trace does not
    /// separate them, so no single name is claimed. Sorted by name.
    Ambiguous(Vec<String>),
    /// No candidate reproduces the stream.
    Unknown,
}

impl std::fmt::Display for IdentifyVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdentifyVerdict::Unique(name) => write!(f, "unique: {name}"),
            IdentifyVerdict::Ambiguous(names) => {
                write!(f, "ambiguous: {}", names.join(", "))
            }
            IdentifyVerdict::Unknown => f.write_str("unknown: no registered policy matches"),
        }
    }
}

/// Replays `trace` through `policy` under `cfg` with the synchronous
/// insert-on-miss protocol and returns the digest of the full decision
/// stream (constant memory — the events are folded, never retained).
pub fn digest_run(
    cfg: UopCacheConfig,
    policy: Box<dyn PwReplacementPolicy>,
    trace: &LookupTrace,
) -> StreamDigest {
    let mut cache = UopCache::new(cfg, policy);
    cache.set_recorder(Box::new(DigestRecorder::new()));
    for access in trace.iter() {
        let result = cache.lookup(&access.pw);
        if !result.is_full_hit() {
            cache.insert(&access.pw);
        }
    }
    let rec = cache.take_recorder().expect("recorder installed above");
    rec.as_any()
        .and_then(|any| any.downcast_ref::<DigestRecorder>())
        .expect("DigestRecorder round-trips through as_any")
        .digest()
}

/// Digests every `(name, policy)` candidate on the same probe trace,
/// producing the table [`identify`] matches against.
pub fn digest_table(
    cfg: UopCacheConfig,
    candidates: Vec<(String, Box<dyn PwReplacementPolicy>)>,
    trace: &LookupTrace,
) -> Vec<CandidateDigest> {
    candidates
        .into_iter()
        .map(|(name, policy)| CandidateDigest {
            name,
            digest: digest_run(cfg, policy, trace),
        })
        .collect()
}

/// Matches `target` against the candidate table.
///
/// Reports [`IdentifyVerdict::Ambiguous`] whenever more than one candidate
/// matches, rather than picking one — a digest collision on the probe trace
/// is evidence the candidates are indistinguishable *on that trace*, not
/// that either generated the stream.
pub fn identify(target: StreamDigest, table: &[CandidateDigest]) -> IdentifyVerdict {
    let mut matches: Vec<String> = table
        .iter()
        .filter(|c| c.digest == target)
        .map(|c| c.name.clone())
        .collect();
    matches.sort();
    match matches.len() {
        0 => IdentifyVerdict::Unknown,
        1 => IdentifyVerdict::Unique(matches.remove(0)),
        _ => IdentifyVerdict::Ambiguous(matches),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_cache::LruPolicy;
    use uopcache_policies::{FifoPolicy, SrripPolicy};
    use uopcache_trace::{build_trace, AppId, InputVariant};

    fn probe() -> LookupTrace {
        build_trace(AppId::Kafka, InputVariant(0), 4_000)
    }

    fn small_cfg() -> UopCacheConfig {
        // A quarter-size zen3 keeps sets under pressure so victim choices
        // actually separate the candidates.
        let mut cfg = UopCacheConfig::zen3();
        cfg.entries /= 4;
        cfg
    }

    #[test]
    fn digesting_is_deterministic() {
        let trace = probe();
        let a = digest_run(small_cfg(), Box::new(LruPolicy::new()), &trace);
        let b = digest_run(small_cfg(), Box::new(LruPolicy::new()), &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn identifies_the_generating_policy_uniquely() {
        let trace = probe();
        let table = digest_table(
            small_cfg(),
            vec![
                ("LRU".into(), Box::new(LruPolicy::new()) as _),
                ("FIFO".into(), Box::new(FifoPolicy::new()) as _),
                ("SRRIP".into(), Box::new(SrripPolicy::new()) as _),
            ],
            &trace,
        );
        let captured = digest_run(small_cfg(), Box::new(FifoPolicy::new()), &trace);
        assert_eq!(
            identify(captured, &table),
            IdentifyVerdict::Unique("FIFO".into())
        );
    }

    #[test]
    fn collisions_are_reported_ambiguous_not_guessed() {
        let trace = probe();
        // The same policy registered under two names is the canonical
        // forced collision.
        let table = digest_table(
            small_cfg(),
            vec![
                ("LRU".into(), Box::new(LruPolicy::new()) as _),
                ("LRU-again".into(), Box::new(LruPolicy::new()) as _),
            ],
            &trace,
        );
        let captured = digest_run(small_cfg(), Box::new(LruPolicy::new()), &trace);
        assert_eq!(
            identify(captured, &table),
            IdentifyVerdict::Ambiguous(vec!["LRU".into(), "LRU-again".into()])
        );
    }

    #[test]
    fn unregistered_streams_come_back_unknown() {
        let trace = probe();
        let table = digest_table(
            small_cfg(),
            vec![("LRU".into(), Box::new(LruPolicy::new()) as _)],
            &trace,
        );
        let captured = digest_run(small_cfg(), Box::new(SrripPolicy::new()), &trace);
        assert_eq!(identify(captured, &table), IdentifyVerdict::Unknown);
        assert_eq!(identify(captured, &[]), IdentifyVerdict::Unknown);
    }

    #[test]
    fn verdicts_render_for_the_cli() {
        assert_eq!(
            IdentifyVerdict::Unique("ARC".into()).to_string(),
            "unique: ARC"
        );
        assert_eq!(
            IdentifyVerdict::Ambiguous(vec!["CAR".into(), "CLOCK".into()]).to_string(),
            "ambiguous: CAR, CLOCK"
        );
        assert!(IdentifyVerdict::Unknown.to_string().contains("unknown"));
    }
}
