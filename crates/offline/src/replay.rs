//! Replaying FOO/FLACK decision sequences through the real set-associative
//! micro-op cache.

use crate::foo::FooSolution;
use crate::occurrences::OccurrenceIndex;
use uopcache_cache::{LookupResult, PwMeta, PwReplacementPolicy, UopCache};
use uopcache_model::{LookupTrace, PwDesc, UopCacheConfig, UopCacheStats};

/// When decided evictions are applied.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum EvictionTiming {
    /// Apply the solver's "do not keep" verdict immediately after the access
    /// (raw FOO behaviour, oblivious to asynchronous insertion).
    Eager,
    /// Defer evictions until another window actually needs the space —
    /// FLACK's *lazy eviction*, which approximates insertion-time decisions
    /// and protects windows whose insertion is still in flight (§IV).
    Lazy,
}

/// Replacement policy that follows a precomputed keep/evict schedule.
///
/// Victim priority on a forced eviction: residents the solver decided not to
/// keep first (furthest next use breaks ties), then kept residents by
/// furthest next use — so solver decisions are honoured whenever the
/// set-associative reality matches the solve, and degrade gracefully when it
/// does not.
struct OracleReplayPolicy {
    keep: Vec<bool>,
    occ: OccurrenceIndex,
    clock: u32,
    started: bool,
    /// Per (set, slot): whether the resident was kept by the solver.
    kept: Vec<Vec<bool>>,
}

impl OracleReplayPolicy {
    fn new(solution: &FooSolution, trace: &LookupTrace) -> Self {
        OracleReplayPolicy {
            keep: solution.keep.clone(),
            occ: OccurrenceIndex::new(trace),
            clock: 0,
            started: false,
            kept: Vec::new(),
        }
    }

    fn decision(&self, t: u32) -> bool {
        self.keep.get(t as usize).copied().unwrap_or(false)
    }

    // audit:alloc-exempt — offline oracle replay bookkeeping; replay policies
    // are compared for decisions, never timed by the kernel benchmark
    fn set_kept(&mut self, set: usize, slot: u8, value: bool) {
        if self.kept.len() <= set {
            self.kept.resize_with(set + 1, Vec::new);
        }
        let row = &mut self.kept[set];
        if row.len() <= usize::from(slot) {
            row.resize(usize::from(slot) + 1, false);
        }
        row[usize::from(slot)] = value;
    }

    fn is_kept(&self, set: usize, slot: u8) -> bool {
        self.kept
            .get(set)
            .and_then(|row| row.get(usize::from(slot)))
            .copied()
            .unwrap_or(false)
    }
}

impl PwReplacementPolicy for OracleReplayPolicy {
    fn name(&self) -> &'static str {
        "OracleReplay"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        if self.kept.len() < sets {
            self.kept.resize_with(sets, Vec::new);
        }
        let ways = ways as usize;
        for row in &mut self.kept {
            if row.len() < ways {
                row.resize(ways, false);
            }
        }
    }

    fn on_lookup(&mut self, _pw: &PwDesc) {
        if self.started {
            self.clock += 1;
        } else {
            self.started = true;
        }
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        let d = self.decision(self.clock);
        self.set_kept(set, meta.slot, d);
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        let d = self.decision(self.clock);
        self.set_kept(set, meta.slot, d);
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        self.set_kept(set, meta.slot, false);
    }

    fn should_bypass(
        &mut self,
        _set: usize,
        _incoming: &PwDesc,
        _needed_entries: u32,
        _free_entries: u32,
        _resident: &[PwMeta],
    ) -> bool {
        // Bypass decisions are made by the replay driver (it knows the access
        // index even for misses); the policy never bypasses on its own.
        false
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        let clock = self.clock;
        resident
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| {
                let kept = self.is_kept(set, m.slot);
                let next = self.occ.next_use_after(m.desc.start, clock);
                // Unkept residents sort above kept ones; furthest next use
                // wins within each class.
                (!kept, next)
            })
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

/// Replays `solution` over `trace` on a cache with geometry `cfg` and returns
/// the resulting statistics.
///
/// # Examples
///
/// ```
/// use uopcache_model::UopCacheConfig;
/// use uopcache_offline::{foo, replay, FooConfig};
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let trace = build_trace(AppId::Kafka, InputVariant::default(), 2_000);
/// let cfg = UopCacheConfig::zen3();
/// let sol = foo::solve(&trace, &cfg, &FooConfig::flack());
/// let stats = replay::replay(&trace, &cfg, &sol, replay::EvictionTiming::Lazy);
/// assert!(stats.uops_hit > 0);
/// ```
pub fn replay(
    trace: &LookupTrace,
    cfg: &UopCacheConfig,
    solution: &FooSolution,
    timing: EvictionTiming,
) -> UopCacheStats {
    replay_observed(trace, cfg, solution, timing).0
}

/// As [`replay`], additionally returning per-access observations
/// `(start, hit_uops, total_uops)` — FURBYS builds its hit-rate profile from
/// these (STEP 5 of the pipeline).
pub fn replay_observed(
    trace: &LookupTrace,
    cfg: &UopCacheConfig,
    solution: &FooSolution,
    timing: EvictionTiming,
) -> (UopCacheStats, Vec<(uopcache_model::Addr, u32, u32)>) {
    replay_full(trace, cfg, solution, timing, false)
}

/// As [`replay_observed`] with optional cold/capacity/conflict miss
/// classification (used by the §III-B study to show how a near-optimal
/// policy shrinks capacity and conflict misses).
pub fn replay_full(
    trace: &LookupTrace,
    cfg: &UopCacheConfig,
    solution: &FooSolution,
    timing: EvictionTiming,
    classify: bool,
) -> (UopCacheStats, Vec<(uopcache_model::Addr, u32, u32)>) {
    let mut obs = Vec::new();
    let stats = replay_full_into(trace, cfg, solution, timing, classify, &mut obs);
    (stats, obs)
}

/// As [`replay_full`], writing the per-access observations into a
/// caller-provided buffer (cleared first), so callers replaying many
/// solutions over the same trace reuse one observation allocation across
/// passes instead of paying a trace-sized `Vec` per replay.
pub fn replay_full_into(
    trace: &LookupTrace,
    cfg: &UopCacheConfig,
    solution: &FooSolution,
    timing: EvictionTiming,
    classify: bool,
    obs: &mut Vec<(uopcache_model::Addr, u32, u32)>,
) -> UopCacheStats {
    let policy = OracleReplayPolicy::new(solution, trace);
    let mut cache = UopCache::new(*cfg, Box::new(policy));
    if classify {
        cache.enable_classification();
    }
    obs.clear();
    obs.reserve(trace.len());
    for (t, access) in trace.iter().enumerate() {
        let result = cache.lookup(&access.pw);
        obs.push((access.pw.start, result.hit_uops(), access.pw.uops));
        let keep = solution.keep.get(t).copied().unwrap_or(false);
        match result {
            LookupResult::Hit { .. } => {
                if !keep && timing == EvictionTiming::Eager {
                    cache.evict_start(access.pw.start);
                }
            }
            LookupResult::PartialHit { .. } | LookupResult::Miss => {
                if keep {
                    cache.insert(&access.pw);
                } else if timing == EvictionTiming::Eager {
                    // Raw FOO evicts/bypasses immediately.
                    cache.evict_start(access.pw.start);
                }
                // Lazy: a not-kept window is simply not inserted; if a
                // shorter version is resident it stays until space is needed.
            }
        }
    }
    *cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foo::{self, FooConfig};
    use uopcache_cache::LruPolicy;
    use uopcache_model::{Addr, PwAccess, PwTermination};
    use uopcache_policies::run_trace;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    fn acc(start: u64, uops: u32) -> PwAccess {
        PwAccess::new(PwDesc::new(
            Addr::new(start),
            uops,
            uops * 3,
            PwTermination::TakenBranch,
        ))
    }

    #[test]
    fn replay_honours_expected_hits_when_sets_allow() {
        let cfg = UopCacheConfig {
            entries: 2,
            ways: 2,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 2,
        };
        let t: LookupTrace = [acc(0, 4), acc(64, 4), acc(0, 4), acc(64, 4)]
            .into_iter()
            .collect();
        let sol = foo::solve(&t, &cfg, &FooConfig::foo_ohr());
        let stats = replay(&t, &cfg, &sol, EvictionTiming::Eager);
        assert_eq!(stats.pw_hits, 2);
        assert_eq!(stats.uops_missed, 8); // only the two cold misses
    }

    #[test]
    fn lazy_timing_never_loses_to_eager_on_real_workloads() {
        let cfg = UopCacheConfig::zen3();
        let t = build_trace(AppId::Kafka, InputVariant(0), 15_000);
        let sol = foo::solve(&t, &cfg, &FooConfig::flack());
        let eager = replay(&t, &cfg, &sol, EvictionTiming::Eager);
        let lazy = replay(&t, &cfg, &sol, EvictionTiming::Lazy);
        assert!(
            lazy.uops_missed <= eager.uops_missed,
            "lazy {} vs eager {}",
            lazy.uops_missed,
            eager.uops_missed
        );
    }

    #[test]
    fn flack_replay_beats_lru_substantially() {
        let cfg = UopCacheConfig::zen3();
        let t = build_trace(AppId::Postgres, InputVariant(0), 20_000);
        let mut lru = UopCache::new(cfg, Box::new(LruPolicy::new()));
        let lru_stats = run_trace(&mut lru, &t);
        let sol = foo::solve(&t, &cfg, &FooConfig::flack());
        let flack = replay(&t, &cfg, &sol, EvictionTiming::Lazy);
        let reduction = flack.miss_reduction_vs(&lru_stats);
        assert!(
            reduction > 5.0,
            "expected substantial miss reduction, got {reduction:.2}%"
        );
    }

    #[test]
    fn observed_into_reuses_the_buffer_across_passes() {
        let cfg = UopCacheConfig::zen3();
        let t = build_trace(AppId::Kafka, InputVariant(0), 5_000);
        let sol = foo::solve(&t, &cfg, &FooConfig::flack());
        let (stats, obs) = replay_observed(&t, &cfg, &sol, EvictionTiming::Lazy);

        let mut buf = Vec::new();
        let first = replay_full_into(&t, &cfg, &sol, EvictionTiming::Lazy, false, &mut buf);
        assert_eq!(first, stats);
        assert_eq!(buf, obs);
        let cap = buf.capacity();
        let second = replay_full_into(&t, &cfg, &sol, EvictionTiming::Lazy, false, &mut buf);
        assert_eq!(second, stats);
        assert_eq!(buf, obs);
        assert_eq!(buf.capacity(), cap, "second pass must reuse the allocation");
    }

    #[test]
    fn bypassed_windows_do_not_pollute() {
        let cfg = UopCacheConfig {
            entries: 2,
            ways: 2,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 2,
        };
        // B used once, A and C loop: solver must not keep B.
        let t: LookupTrace = [acc(0, 4), acc(64, 4), acc(128, 4), acc(0, 4), acc(64, 4)]
            .into_iter()
            .collect();
        let sol = foo::solve(&t, &cfg, &FooConfig::foo_ohr());
        assert!(!sol.keep[2]);
        let stats = replay(&t, &cfg, &sol, EvictionTiming::Lazy);
        assert_eq!(stats.pw_hits, 2);
    }
}
