//! Belady's MIN algorithm adapted to prediction windows.

use crate::occurrences::{OccurrenceIndex, NEVER};
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::{LookupTrace, PwDesc};

/// Belady's algorithm as the paper implements it for the micro-op cache:
/// the victim is the resident PW whose start address is looked up furthest in
/// the future, and an insertion is bypassed when the incoming PW's next use
/// lies beyond every resident's (the "decision at insertion time"
/// modification of §III-C).
///
/// Windows are identified by start address for next-use purposes; Belady
/// remains blind to PW *cost* (micro-ops), to partial-hit structure and to
/// asynchronous insertion — the three deficiencies FLACK fixes.
///
/// The policy must be driven in the exact trace order it was built from
/// (it advances an internal clock on every lookup).
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_offline::BeladyPolicy;
/// use uopcache_policies::run_trace;
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let trace = build_trace(AppId::Kafka, InputVariant::default(), 4_000);
/// let mut cache = UopCache::new(
///     UopCacheConfig::zen3(),
///     Box::new(BeladyPolicy::from_trace(&trace)),
/// );
/// let stats = run_trace(&mut cache, &trace);
/// assert_eq!(stats.lookups, 4_000);
/// ```
#[derive(Clone, Debug)]
pub struct BeladyPolicy {
    occ: OccurrenceIndex,
    /// Position of the lookup currently being processed (0-based).
    clock: u32,
    started: bool,
}

impl BeladyPolicy {
    /// Builds the oracle from the trace that will subsequently be replayed.
    pub fn from_trace(trace: &LookupTrace) -> Self {
        Self::from_index(OccurrenceIndex::new(trace))
    }

    /// Builds the oracle from a prebuilt occurrence index, rewinding its
    /// cursors. Together with [`BeladyPolicy::into_index`] this lets repeated
    /// passes over the same trace share one index instead of re-scanning the
    /// trace per pass.
    pub fn from_index(mut occ: OccurrenceIndex) -> Self {
        occ.reset_cursors();
        BeladyPolicy {
            occ,
            clock: 0,
            started: false,
        }
    }

    /// Recovers the occurrence index for reuse in a later pass.
    pub fn into_index(self) -> OccurrenceIndex {
        self.occ
    }

    /// The current position in the trace (for diagnostics).
    pub fn position(&self) -> u32 {
        self.clock
    }
}

impl PwReplacementPolicy for BeladyPolicy {
    fn name(&self) -> &'static str {
        "Belady"
    }

    fn on_lookup(&mut self, _pw: &PwDesc) {
        if self.started {
            self.clock += 1;
        } else {
            self.started = true;
        }
    }

    fn on_hit(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_evict(&mut self, _set: usize, _meta: &PwMeta) {}

    fn should_bypass(
        &mut self,
        _set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        let clock = self.clock;
        let incoming_next = self.occ.next_use_after(incoming.start, clock);
        if incoming_next == NEVER {
            return true;
        }
        // Inserting into free space costs nothing; only bypass when the
        // incoming PW would itself be the Belady victim of the forced
        // eviction.
        if needed_entries <= free_entries || resident.is_empty() {
            return false;
        }
        resident.iter().all(|m| {
            let next = self.occ.next_use_after(m.desc.start, clock);
            next < incoming_next
        })
    }

    fn choose_victim(&mut self, _set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        let clock = self.clock;
        resident
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| self.occ.next_use_after(m.desc.start, clock))
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_cache::{LruPolicy, UopCache};
    use uopcache_model::PwTermination;
    use uopcache_model::{Addr, PwAccess, UopCacheConfig};
    use uopcache_policies::run_trace;

    fn small_cfg() -> UopCacheConfig {
        UopCacheConfig {
            entries: 4,
            ways: 2,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 2,
        }
    }

    fn trace_of(starts: &[u64]) -> LookupTrace {
        starts
            .iter()
            .map(|&a| {
                // Spread addresses into set 0 by using multiples of 128 with
                // a small id offset; uops fixed at 2.
                PwAccess::new(PwDesc::new(Addr::new(a), 2, 6, PwTermination::TakenBranch))
            })
            .collect()
    }

    #[test]
    fn belady_beats_lru_on_looping_pattern() {
        // Classic LRU-adversarial cyclic pattern over 3 blocks in a 2-way set.
        // Addresses 0, 128, 256 all map to set 0 of the 2-set cache.
        let pattern: Vec<u64> = (0..60).map(|i| [0u64, 128, 256][i % 3]).collect();
        let t = trace_of(&pattern);

        let mut lru = UopCache::new(small_cfg(), Box::new(LruPolicy::new()));
        let lru_stats = run_trace(&mut lru, &t);

        let mut bel = UopCache::new(small_cfg(), Box::new(BeladyPolicy::from_trace(&t)));
        let bel_stats = run_trace(&mut bel, &t);

        assert!(
            bel_stats.uops_missed < lru_stats.uops_missed,
            "belady {} vs lru {}",
            bel_stats.uops_missed,
            lru_stats.uops_missed
        );
    }

    #[test]
    fn bypasses_never_reused_windows() {
        let t = trace_of(&[0, 128, 256, 0, 128]);
        // 256 is never reused: Belady bypasses its insertion.
        let mut cache = UopCache::new(small_cfg(), Box::new(BeladyPolicy::from_trace(&t)));
        let stats = run_trace(&mut cache, &t);
        assert!(stats.bypasses >= 1);
        // 0 and 128 hit on their second accesses.
        assert_eq!(stats.pw_hits, 2);
    }

    #[test]
    fn never_worse_than_lru_across_synthetic_apps() {
        use uopcache_trace::{build_trace, AppId, InputVariant};
        for app in [AppId::Kafka, AppId::Postgres] {
            let t = build_trace(app, InputVariant(0), 12_000);
            let cfg = UopCacheConfig::zen3();
            let mut lru = UopCache::new(cfg, Box::new(LruPolicy::new()));
            let lru_stats = run_trace(&mut lru, &t);
            let mut bel = UopCache::new(cfg, Box::new(BeladyPolicy::from_trace(&t)));
            let bel_stats = run_trace(&mut bel, &t);
            assert!(
                bel_stats.uops_missed <= lru_stats.uops_missed,
                "{app}: belady {} vs lru {}",
                bel_stats.uops_missed,
                lru_stats.uops_missed
            );
        }
    }

    #[test]
    fn recycled_index_replays_identically() {
        let pattern: Vec<u64> = (0..60).map(|i| [0u64, 128, 256][i % 3]).collect();
        let t = trace_of(&pattern);
        let mut first = UopCache::new(small_cfg(), Box::new(BeladyPolicy::from_trace(&t)));
        let first_stats = run_trace(&mut first, &t);

        // Exhaust the cursors, then recycle the index through the
        // from_index/into_index round trip: the rewind must restore a
        // byte-identical replay.
        let mut occ = crate::OccurrenceIndex::new(&t);
        occ.next_use_after(Addr::new(0), 60);
        occ.next_use_after(Addr::new(128), 60);
        occ.next_use_after(Addr::new(256), 60);
        let occ = BeladyPolicy::from_index(occ).into_index();
        let mut cache = UopCache::new(small_cfg(), Box::new(BeladyPolicy::from_index(occ)));
        let stats = run_trace(&mut cache, &t);
        assert_eq!(stats.uops_missed, first_stats.uops_missed);
        assert_eq!(stats.pw_hits, first_stats.pw_hits);
    }

    #[test]
    fn clock_tracks_lookups() {
        let t = trace_of(&[0, 128, 0]);
        let mut cache = UopCache::new(small_cfg(), Box::new(BeladyPolicy::from_trace(&t)));
        run_trace(&mut cache, &t);
        // Position advanced to the last access index.
    }
}
