//! Exhaustive offline-optimal replacement for *tiny* traces, by state-space
//! search over cache contents.
//!
//! Optimal replacement with variable-size, variable-cost objects is
//! NP-complete (Hosseini-Khayat, 2000 — the paper's ref. 41), so this solver is
//! exponential and only usable for validation: it establishes the true
//! minimum micro-op miss cost on small instances, against which Belady, FOO
//! and FLACK can be measured. FLACK is *near*-optimal; this module is how the
//! test suite keeps that claim honest.

use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, LookupTrace, UopCacheConfig};

/// Result of the exhaustive search.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct OptimalCost {
    /// Minimum achievable missed micro-ops over the trace.
    pub missed_uops: u64,
    /// States explored (for diagnostics / guarding against blow-up).
    pub states_explored: u64,
}

/// Computes the minimum total missed micro-ops for `trace` on a cache with
/// `cfg`'s geometry, exploring all keep/evict/bypass choices.
///
/// Semantics match the synchronous placement model used by the replay layer:
/// a lookup fully hits if a resident window with the same start covers it;
/// a shorter resident window yields a partial hit for its overlap; after any
/// non-full hit the (full) window may be inserted — evicting any subset of
/// residents — or bypassed.
///
/// # Panics
///
/// Panics if the search exceeds an internal state budget (use traces of at
/// most a few dozen accesses over a handful of windows).
///
/// # Examples
///
/// ```
/// use uopcache_model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination, UopCacheConfig};
/// use uopcache_offline::optimal::optimal_missed_uops;
///
/// let acc = |s: u64, u: u32| {
///     PwAccess::new(PwDesc::new(Addr::new(s), u, u * 3, PwTermination::TakenBranch))
/// };
/// // One window, accessed twice: only the cold miss is unavoidable.
/// let trace: LookupTrace = [acc(0, 4), acc(0, 4)].into_iter().collect();
/// let cfg = UopCacheConfig { entries: 2, ways: 2, uops_per_entry: 8,
///     switch_penalty: 1, inclusive_with_l1i: true, max_entries_per_pw: 2 };
/// assert_eq!(optimal_missed_uops(&trace, &cfg).missed_uops, 4);
/// ```
pub fn optimal_missed_uops(trace: &LookupTrace, cfg: &UopCacheConfig) -> OptimalCost {
    // Canonical window universe: distinct start addresses with, per access,
    // the looked-up uop count. Cache state = per start, the resident uop
    // count (0 = absent). Windows are grouped by set; capacity applies per
    // set in entries.
    let accesses = trace.accesses();
    let mut starts: Vec<Addr> = Vec::new();
    let mut start_idx: FastHashMap<Addr, usize> = FastHashMap::default();
    for a in accesses {
        start_idx.entry(a.pw.start).or_insert_with(|| {
            starts.push(a.pw.start);
            starts.len() - 1
        });
    }
    assert!(
        starts.len() <= 8,
        "exhaustive solver: at most 8 distinct windows"
    );
    assert!(
        accesses.len() <= 40,
        "exhaustive solver: at most 40 accesses"
    );

    let sets: Vec<usize> = starts.iter().map(|&s| cfg.set_index_for(s, 64)).collect();
    let entries_of = |uops: u32| uops.div_ceil(cfg.uops_per_entry);
    let cacheable = |uops: u32| {
        let e = entries_of(uops);
        e <= cfg.max_entries_per_pw && e <= cfg.ways
    };

    // State: resident uop count per start (u32 each); memoised per access
    // index.
    type State = Vec<u32>;
    let mut memo: Vec<FastHashMap<State, u64>> = vec![FastHashMap::default(); accesses.len() + 1];
    let mut explored = 0u64;

    // Iterative deepening is unnecessary; plain DFS with memoisation.
    fn feasible(state: &[u32], sets: &[usize], cfg: &UopCacheConfig) -> bool {
        let mut used: FastHashMap<usize, u32> = FastHashMap::default();
        for (i, &uops) in state.iter().enumerate() {
            if uops > 0 {
                *used.entry(sets[i]).or_insert(0) += uops.div_ceil(cfg.uops_per_entry);
            }
        }
        used.values().all(|&u| u <= cfg.ways)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        t: usize,
        state: State,
        accesses: &[uopcache_model::PwAccess],
        start_idx: &FastHashMap<Addr, usize>,
        sets: &[usize],
        cfg: &UopCacheConfig,
        memo: &mut Vec<FastHashMap<State, u64>>,
        explored: &mut u64,
        cacheable: &dyn Fn(u32) -> bool,
    ) -> u64 {
        if t == accesses.len() {
            return 0;
        }
        if let Some(&v) = memo[t].get(&state) {
            return v;
        }
        *explored += 1;
        assert!(
            *explored < 4_000_000,
            "exhaustive solver state budget exceeded"
        );
        let pw = accesses[t].pw;
        let idx = start_idx[&pw.start];
        let resident = state[idx];
        let miss_now = u64::from(pw.uops.saturating_sub(resident));

        let mut best = u64::MAX;
        // Choice A: do not (re)insert — state unchanged except nothing.
        {
            let cost = miss_now
                + dfs(
                    t + 1,
                    state.clone(),
                    accesses,
                    start_idx,
                    sets,
                    cfg,
                    memo,
                    explored,
                    cacheable,
                );
            best = best.min(cost);
        }
        // Choice B: insert/upgrade to the full window (if it missed at all
        // and is cacheable), after evicting any subset of other residents in
        // the same set. Enumerate subsets of resident same-set windows.
        if miss_now > 0 && cacheable(pw.uops) {
            let same_set: Vec<usize> = (0..state.len())
                .filter(|&i| i != idx && state[i] > 0 && sets[i] == sets[idx])
                .collect();
            let subsets = 1usize << same_set.len();
            for mask in 0..subsets {
                let mut next = state.clone();
                next[idx] = pw.uops.max(resident);
                for (bit, &i) in same_set.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        next[i] = 0;
                    }
                }
                if !feasible(&next, sets, cfg) {
                    continue;
                }
                let cost = miss_now
                    + dfs(
                        t + 1,
                        next,
                        accesses,
                        start_idx,
                        sets,
                        cfg,
                        memo,
                        explored,
                        cacheable,
                    );
                best = best.min(cost);
            }
        }
        // Choice C: evict the resident window after the access (frees space
        // for the future) — only meaningful if it was resident.
        if resident > 0 {
            let mut next = state.clone();
            next[idx] = 0;
            let cost = miss_now
                + dfs(
                    t + 1,
                    next,
                    accesses,
                    start_idx,
                    sets,
                    cfg,
                    memo,
                    explored,
                    cacheable,
                );
            best = best.min(cost);
        }
        memo[t].insert(state, best);
        best
    }

    let initial = vec![0u32; starts.len()];
    let missed = dfs(
        0,
        initial,
        accesses,
        &start_idx,
        &sets,
        cfg,
        &mut memo,
        &mut explored,
        &cacheable,
    );
    OptimalCost {
        missed_uops: missed,
        states_explored: explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foo::{self, FooConfig};
    use crate::replay::{self, EvictionTiming};
    use uopcache_model::{PwAccess, PwDesc, PwTermination};

    fn acc(s: u64, u: u32) -> PwAccess {
        PwAccess::new(PwDesc::new(
            Addr::new(s),
            u,
            u * 3,
            PwTermination::TakenBranch,
        ))
    }

    fn cfg2() -> UopCacheConfig {
        UopCacheConfig {
            entries: 2,
            ways: 2,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 2,
        }
    }

    #[test]
    fn figure3_scenario_cost_is_three() {
        // Paper Fig. 3: B(1 uop) x3 then A(1) then C(4); A and C resident.
        // Optimal: bypass B (3 misses of 1 uop each = 3), keep A and C.
        // (Belady would evict C: cost 1+4 = 5.)
        let trace: LookupTrace = [
            acc(0, 1),   // A cold (1)
            acc(64, 4),  // C cold (4)
            acc(128, 1), // B
            acc(128, 1),
            acc(128, 1),
            acc(0, 1),
            acc(64, 4),
        ]
        .into_iter()
        .collect();
        let opt = optimal_missed_uops(&trace, &cfg2());
        // 5 cold uops (A=1, C=4) + 3 B misses when bypassed... but B could
        // also be cached after its first miss: B(1) + hits. Options:
        // keep B (evict A or C): best is evict A -> A remisses 1 at t5:
        // cost = 1+4 (cold) + 1 (B cold) + 1 (A remiss) = 7?  vs bypass B:
        // 1+4+3 = 8. So optimal = 7.
        assert_eq!(opt.missed_uops, 7, "explored {}", opt.states_explored);
    }

    #[test]
    fn flack_is_near_optimal_on_small_instances() {
        // FLACK must be within a modest factor of the true optimum on a mix
        // of crafted small traces.
        let traces: Vec<LookupTrace> = vec![
            [
                acc(0, 1),
                acc(64, 4),
                acc(128, 1),
                acc(128, 1),
                acc(128, 1),
                acc(0, 1),
                acc(64, 4),
            ]
            .into_iter()
            .collect(),
            [
                acc(0, 8),
                acc(64, 8),
                acc(128, 8),
                acc(0, 8),
                acc(64, 8),
                acc(128, 8),
            ]
            .into_iter()
            .collect(),
            [
                acc(0, 12),
                acc(0, 3),
                acc(64, 6),
                acc(0, 3),
                acc(64, 6),
                acc(0, 12),
            ]
            .into_iter()
            .collect(),
            [
                acc(0, 2),
                acc(64, 2),
                acc(0, 2),
                acc(128, 9),
                acc(128, 9),
                acc(0, 2),
                acc(64, 2),
            ]
            .into_iter()
            .collect(),
        ];
        for trace in traces {
            let cfg = cfg2();
            let opt = optimal_missed_uops(&trace, &cfg);
            let sol = foo::solve(&trace, &cfg, &FooConfig::flack());
            let flack = replay::replay(&trace, &cfg, &sol, EvictionTiming::Lazy);
            assert!(
                flack.uops_missed <= opt.missed_uops * 2,
                "FLACK {} vs optimal {} on {:?}",
                flack.uops_missed,
                opt.missed_uops,
                trace
            );
            assert!(
                flack.uops_missed >= opt.missed_uops,
                "optimal must lower-bound FLACK"
            );
        }
    }

    #[test]
    fn optimal_lower_bounds_belady_and_foo_randomly() {
        use uopcache_model::rng::{Prng, Rng};
        let mut rng = Prng::seed_from_u64(42);
        let cfg = cfg2();
        for round in 0..25 {
            let len = rng.gen_range(4..16);
            let trace: LookupTrace = (0..len)
                .map(|_| acc(64 * rng.gen_range(0..4u64), rng.gen_range(1..12u32)))
                .collect();
            let opt = optimal_missed_uops(&trace, &cfg);
            // Belady.
            let mut bel = uopcache_cache::UopCache::new(
                cfg,
                Box::new(crate::BeladyPolicy::from_trace(&trace)),
            );
            let bel_stats = uopcache_policies::run_trace(&mut bel, &trace);
            assert!(
                bel_stats.uops_missed >= opt.missed_uops,
                "round {round}: Belady {} below optimal {}",
                bel_stats.uops_missed,
                opt.missed_uops
            );
            // FLACK replay.
            let sol = foo::solve(&trace, &cfg, &FooConfig::flack());
            let flack = replay::replay(&trace, &cfg, &sol, EvictionTiming::Lazy);
            assert!(
                flack.uops_missed >= opt.missed_uops,
                "round {round}: FLACK {} below optimal {}",
                flack.uops_missed,
                opt.missed_uops
            );
        }
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let opt = optimal_missed_uops(&LookupTrace::new(), &cfg2());
        assert_eq!(opt.missed_uops, 0);
    }

    #[test]
    #[should_panic(expected = "at most 8 distinct")]
    fn too_many_windows_rejected() {
        let trace: LookupTrace = (0..9u64).map(|i| acc(i * 64, 1)).collect();
        let _ = optimal_missed_uops(&trace, &cfg2());
    }
}
