//! # uopcache-offline
//!
//! Offline (oracle) replacement policies for the micro-op cache:
//!
//! * [`BeladyPolicy`] — Belady's MIN adapted to prediction windows: evicts
//!   the resident with the furthest next use and bypasses insertions whose
//!   next use lies beyond every resident's. The paper shows this is
//!   *sub-optimal* for the micro-op cache (§III-C); it is the reference FLACK
//!   is measured against.
//! * [`foo`] — the flow-based offline optimal (FOO) of Berger et al.,
//!   formulated **per cache set** as a min-cost-flow interval packing and
//!   solved exactly with `uopcache-flow`. Its [`FooConfig`] generalises to
//!   the cost-aware objective and coverage intervals that FLACK
//!   (`uopcache-core`) adds on top.
//! * [`replay`] — replays a FOO/FLACK decision sequence through the real
//!   set-associative [`uopcache_cache::UopCache`], with either eager or lazy
//!   (insertion-time) eviction.
//! * [`identify`] — the inverse problem: given the digest of a captured
//!   decision stream, replay the probe trace through every registered
//!   policy and name the one that reproduces it (explicitly reporting
//!   ambiguity when the trace does not separate the candidates).
//!
//! # Examples
//!
//! ```
//! use uopcache_model::UopCacheConfig;
//! use uopcache_offline::{foo, replay, FooConfig};
//! use uopcache_trace::{build_trace, AppId, InputVariant};
//!
//! let trace = build_trace(AppId::Postgres, InputVariant::default(), 3_000);
//! let cfg = UopCacheConfig::zen3();
//! let solution = foo::solve(&trace, &cfg, &FooConfig::foo_ohr());
//! let stats = replay::replay(&trace, &cfg, &solution, replay::EvictionTiming::Eager);
//! assert_eq!(stats.lookups, 3_000);
//! ```

pub mod belady;
pub mod foo;
pub mod identify;
pub mod occurrences;
pub mod optimal;
pub mod replay;

pub use belady::BeladyPolicy;
pub use foo::{FooConfig, FooSolution, IntervalMode, Objective};
pub use identify::{CandidateDigest, IdentifyVerdict};
pub use occurrences::OccurrenceIndex;
pub use optimal::{optimal_missed_uops, OptimalCost};
pub use replay::EvictionTiming;
