//! Flow-based offline optimal (FOO) replacement, formulated per cache set.
//!
//! Following Berger, Beckmann & Harchol-Balter ("Practical Bounds on Optimal
//! Caching with Variable Object Sizes"), the keep/evict decisions between
//! consecutive accesses of the same window form an interval-packing problem
//! under the cache capacity, whose LP relaxation is a min-cost flow:
//!
//! * one node per access (in trace order), **per cache set** — replacement is
//!   per-set in the micro-op cache, so solving per set both shrinks each
//!   instance (capacity = `ways` entries) and makes every decision directly
//!   enforceable in the set-associative cache;
//! * *inner* edges between consecutive accesses with capacity `ways` and
//!   cost 0 (free space flows through them);
//! * an *interval* edge from each access to the next access it could serve,
//!   with capacity equal to the stored window's size in entries and a
//!   negative per-unit cost encoding the objective.
//!
//! Routing `ways` units of flow from the first to the last access selects the
//! most valuable set of intervals; an interval is **kept** iff its edge is
//! saturated (the FOO-Integral rounding).
//!
//! The [`Objective`] and [`IntervalMode`] knobs express both the paper's
//! baseline FOO (object/byte hit ratio over exact windows) and the FLACK
//! extensions (cost-aware benefit, coverage intervals for partial hits) that
//! `uopcache-core` layers on top.

use uopcache_flow::{EdgeId, FlowGraph};
use uopcache_model::hash::FastHashMap;
use uopcache_model::{LookupTrace, UopCacheConfig};

/// What one unit of cached data is worth.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Objective {
    /// Maximise the number of window hits (FOO's OHR): every kept interval is
    /// worth 1 regardless of size.
    ObjectHitRatio,
    /// Maximise hit entries (FOO's BHR analogue): a kept interval is worth
    /// its size.
    ByteHitRatio,
    /// FLACK's variable-cost objective: a kept interval is worth the
    /// micro-ops it serves (`cost`), i.e. per-entry value `cost/size`.
    CostAware,
}

/// Which future accesses an inserted window can serve.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum IntervalMode {
    /// Only lookups of the *identical* window (same start, same length) —
    /// how baseline FOO and Belady treat overlapping windows.
    ExactWindow,
    /// Any lookup with the same start address: a longer stored window serves
    /// a shorter lookup fully, a shorter one yields a partial hit worth the
    /// overlap (FLACK's selective-bypass feature).
    Coverage,
}

/// Configuration of a FOO/FLACK solve.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct FooConfig {
    /// Benefit model.
    pub objective: Objective,
    /// Interval construction.
    pub interval_mode: IntervalMode,
    /// I-cache line size used for set indexing.
    pub line_bytes: u64,
}

impl FooConfig {
    /// The paper's baseline FOO (object hit ratio, exact windows).
    pub const fn foo_ohr() -> Self {
        FooConfig {
            objective: Objective::ObjectHitRatio,
            interval_mode: IntervalMode::ExactWindow,
            line_bytes: 64,
        }
    }

    /// Baseline FOO optimising byte (entry) hit ratio.
    pub const fn foo_bhr() -> Self {
        FooConfig {
            objective: Objective::ByteHitRatio,
            interval_mode: IntervalMode::ExactWindow,
            line_bytes: 64,
        }
    }

    /// FLACK's solve: cost-aware benefit over coverage intervals.
    pub const fn flack() -> Self {
        FooConfig {
            objective: Objective::CostAware,
            interval_mode: IntervalMode::Coverage,
            line_bytes: 64,
        }
    }
}

/// Result of a FOO solve over a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FooSolution {
    /// Per access: keep the looked-up/inserted window in the cache until its
    /// next use (`false` = bypass the insertion, or evict after the hit).
    pub keep: Vec<bool>,
    /// Per access: the solver expects this lookup to hit (its incoming
    /// interval was kept).
    pub expected_hit: Vec<bool>,
    /// Total benefit of the kept intervals, in scaled objective units.
    pub objective_value: i64,
}

impl FooSolution {
    /// Number of kept intervals.
    pub fn kept_count(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }
}

/// Benefit scaling so `cost/size` ratios stay integral for sizes 1..=8.
const SCALE: i64 = 840;

/// Solves FOO over `trace` for a micro-op cache with geometry `cfg`.
///
/// # Examples
///
/// ```
/// use uopcache_model::UopCacheConfig;
/// use uopcache_offline::{foo, FooConfig};
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let trace = build_trace(AppId::Kafka, InputVariant::default(), 2_000);
/// let sol = foo::solve(&trace, &UopCacheConfig::zen3(), &FooConfig::foo_ohr());
/// assert_eq!(sol.keep.len(), 2_000);
/// ```
pub fn solve(trace: &LookupTrace, cfg: &UopCacheConfig, foo_cfg: &FooConfig) -> FooSolution {
    let n = trace.len();
    let mut keep = vec![false; n];
    let mut expected_hit = vec![false; n];
    let mut objective_value = 0i64;

    // Partition access indices by set.
    let sets = cfg.sets() as usize;
    let mut per_set: Vec<Vec<u32>> = vec![Vec::new(); sets];
    for (i, a) in trace.iter().enumerate() {
        let s = cfg.set_index_for(a.pw.start, foo_cfg.line_bytes);
        per_set[s].push(u32::try_from(i).expect("trace indices fit in u32"));
    }

    // One scratch arena shared by every per-set solve: the interval list,
    // last-seen map, edge handles and flow network are cleared and refilled
    // per set instead of reallocated, keeping the solver loop allocation-flat
    // once the largest set has been visited.
    let mut scratch = SetScratch::default();
    for indices in &per_set {
        solve_set(
            trace,
            cfg,
            foo_cfg,
            indices,
            &mut scratch,
            &mut keep,
            &mut expected_hit,
            &mut objective_value,
        );
    }

    FooSolution {
        keep,
        expected_hit,
        objective_value,
    }
}

/// An interval candidate within one set.
struct Interval {
    /// Local index of the access that inserts/keeps the window.
    from: usize,
    /// Local index of the access that would hit.
    to: usize,
    /// Entries the kept window occupies.
    size: i64,
    /// Scaled total benefit of keeping it.
    benefit: i64,
}

/// Reusable buffers for the per-set solves, cleared between sets so their
/// allocations carry over (see [`solve`]).
struct SetScratch {
    last_seen: FastHashMap<(u64, u32), usize>,
    intervals: Vec<Interval>,
    edge_ids: Vec<EdgeId>,
    graph: FlowGraph,
}

impl Default for SetScratch {
    fn default() -> Self {
        SetScratch {
            last_seen: FastHashMap::default(),
            intervals: Vec::new(),
            edge_ids: Vec::new(),
            graph: FlowGraph::new(0),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_set(
    trace: &LookupTrace,
    cfg: &UopCacheConfig,
    foo_cfg: &FooConfig,
    indices: &[u32],
    scratch: &mut SetScratch,
    keep: &mut [bool],
    expected_hit: &mut [bool],
    objective_value: &mut i64,
) {
    let m = indices.len();
    if m < 2 {
        return;
    }
    let accesses = trace.accesses();
    // Build intervals between consecutive same-key accesses.
    let last_seen = &mut scratch.last_seen;
    last_seen.clear();
    let intervals = &mut scratch.intervals;
    intervals.clear();
    for (local, &gi) in indices.iter().enumerate() {
        let pw = accesses[gi as usize].pw;
        let key = match foo_cfg.interval_mode {
            IntervalMode::ExactWindow => (pw.start.get(), pw.uops),
            IntervalMode::Coverage => (pw.start.get(), 0),
        };
        if let Some(&prev) = last_seen.get(&key) {
            let prev_pw = accesses[indices[prev] as usize].pw;
            let size = i64::from(prev_pw.entries(cfg.uops_per_entry));
            if size <= i64::from(cfg.max_entries_per_pw.min(cfg.ways)) {
                let served = match foo_cfg.interval_mode {
                    IntervalMode::ExactWindow => pw.uops,
                    // Coverage: the stored (previous) window serves the
                    // overlap; a shorter stored window yields a partial hit.
                    IntervalMode::Coverage => prev_pw.uops.min(pw.uops),
                };
                let benefit = match foo_cfg.objective {
                    Objective::ObjectHitRatio => SCALE,
                    Objective::ByteHitRatio => SCALE * size,
                    Objective::CostAware => SCALE * i64::from(served),
                };
                intervals.push(Interval {
                    from: prev,
                    to: local,
                    size,
                    benefit,
                });
            }
        }
        last_seen.insert(key, local);
    }
    if intervals.is_empty() {
        return;
    }

    // Flow network: node per local access; route `ways` units end to end.
    let capacity = i64::from(cfg.ways);
    let graph = &mut scratch.graph;
    graph.reset(m);
    for k in 0..m - 1 {
        graph.add_edge(k, k + 1, capacity, 0);
    }
    let edge_ids = &mut scratch.edge_ids;
    edge_ids.clear();
    for iv in intervals.iter() {
        // Per-unit cost: negative benefit spread over the interval's
        // entries, so a saturated edge earns the full benefit.
        let per_unit = -(iv.benefit / iv.size);
        edge_ids.push(graph.add_edge(iv.from, iv.to, iv.size, per_unit));
    }
    graph.min_cost_flow(0, m - 1, capacity);

    for (iv, &eid) in intervals.iter().zip(edge_ids.iter()) {
        if graph.flow_on(eid) == iv.size {
            keep[indices[iv.from] as usize] = true;
            expected_hit[indices[iv.to] as usize] = true;
            *objective_value += iv.benefit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwAccess, PwDesc, PwTermination};

    fn cfg2way() -> UopCacheConfig {
        // Single-set cache with 2 entries, 8 uops per entry.
        UopCacheConfig {
            entries: 2,
            ways: 2,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 2,
        }
    }

    fn acc(start: u64, uops: u32) -> PwAccess {
        PwAccess::new(PwDesc::new(
            Addr::new(start),
            uops,
            uops * 3,
            PwTermination::TakenBranch,
        ))
    }

    #[test]
    fn keeps_reused_windows_under_capacity() {
        // A and B fit together; both reused: both kept.
        let t: LookupTrace = [acc(0, 4), acc(64, 4), acc(0, 4), acc(64, 4)]
            .into_iter()
            .collect();
        let sol = solve(&t, &cfg2way(), &FooConfig::foo_ohr());
        assert!(sol.keep[0] && sol.keep[1]);
        assert!(sol.expected_hit[2] && sol.expected_hit[3]);
        assert_eq!(sol.kept_count(), 2);
    }

    #[test]
    fn capacity_limits_kept_intervals() {
        // Three 1-entry windows, all reused across each other: only 2 fit.
        let t: LookupTrace = [
            acc(0, 4),
            acc(64, 4),
            acc(128, 4),
            acc(0, 4),
            acc(64, 4),
            acc(128, 4),
        ]
        .into_iter()
        .collect();
        let sol = solve(&t, &cfg2way(), &FooConfig::foo_ohr());
        let kept_first = sol.keep[..3].iter().filter(|&&k| k).count();
        assert_eq!(
            kept_first, 2,
            "only two of the three overlapping intervals fit"
        );
    }

    #[test]
    fn cost_aware_prefers_high_uop_windows() {
        // Paper's Figure 3 scenario: A (1 uop) and C (4 uops) resident;
        // B (1 uop) accessed thrice then A then C, capacity 2 (1-entry each).
        // OHR treats all equally; CostAware must keep C (worth 4 uops).
        let t: LookupTrace = [
            acc(0, 1),   // A
            acc(64, 4),  // C
            acc(128, 1), // B
            acc(128, 1),
            acc(128, 1),
            acc(0, 1),  // A again
            acc(64, 4), // C again
        ]
        .into_iter()
        .collect();
        let sol = solve(&t, &cfg2way(), &FooConfig::flack());
        // C's interval (index 1 -> 6) must be kept.
        assert!(
            sol.keep[1],
            "cost-aware keeps the 4-uop window: {:?}",
            sol.keep
        );
        assert!(sol.expected_hit[6]);
    }

    #[test]
    fn coverage_mode_links_overlapping_windows() {
        // Long window D' then short lookups D (same start): coverage mode
        // connects them, exact mode does not (Figure 4's scenario).
        let t: LookupTrace = [acc(0, 12), acc(0, 3), acc(0, 3)].into_iter().collect();
        let exact = solve(&t, &cfg2way(), &FooConfig::foo_ohr());
        assert!(
            !exact.expected_hit[1],
            "exact windows treat D' and D as distinct"
        );
        let cov = solve(
            &t,
            &cfg2way(),
            &FooConfig {
                objective: Objective::CostAware,
                interval_mode: IntervalMode::Coverage,
                line_bytes: 64,
            },
        );
        assert!(
            cov.expected_hit[1],
            "coverage lets the long window serve the short lookup"
        );
    }

    #[test]
    fn bhr_counts_entries() {
        let t: LookupTrace = [acc(0, 16), acc(0, 16)].into_iter().collect();
        let sol = solve(&t, &cfg2way(), &FooConfig::foo_bhr());
        assert!(sol.keep[0]);
        assert_eq!(sol.objective_value, SCALE * 2);
    }

    #[test]
    fn oversized_windows_are_never_kept() {
        let mut cfg = cfg2way();
        cfg.max_entries_per_pw = 1;
        let t: LookupTrace = [acc(0, 16), acc(0, 16)].into_iter().collect();
        let sol = solve(&t, &cfg, &FooConfig::foo_ohr());
        assert_eq!(sol.kept_count(), 0);
    }

    #[test]
    fn empty_and_singleton_traces() {
        let sol = solve(&LookupTrace::new(), &cfg2way(), &FooConfig::foo_ohr());
        assert!(sol.keep.is_empty());
        let t: LookupTrace = [acc(0, 4)].into_iter().collect();
        let sol = solve(&t, &cfg2way(), &FooConfig::foo_ohr());
        assert_eq!(sol.keep, vec![false]);
    }
}
