//! Next-use indexing over a lookup trace, shared by the oracle policies.

use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, LookupTrace};

/// Position `u32::MAX` stands for "never used again".
pub const NEVER: u32 = u32::MAX;

/// For every PW start address, the sorted positions at which it is looked up,
/// with a moving cursor for O(1) amortised next-use queries.
///
/// # Examples
///
/// ```
/// use uopcache_model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination};
/// use uopcache_offline::{occurrences::NEVER, OccurrenceIndex};
///
/// let mk = |a| PwAccess::new(PwDesc::new(Addr::new(a), 2, 6, PwTermination::TakenBranch));
/// let trace: LookupTrace = [mk(0x10), mk(0x20), mk(0x10)].into_iter().collect();
/// let mut idx = OccurrenceIndex::new(&trace);
/// assert_eq!(idx.next_use_after(Addr::new(0x10), 0), 2);
/// assert_eq!(idx.next_use_after(Addr::new(0x20), 1), NEVER);
/// ```
#[derive(Clone, Debug)]
pub struct OccurrenceIndex {
    positions: FastHashMap<Addr, (Vec<u32>, usize)>,
}

impl OccurrenceIndex {
    /// Builds the index for `trace`.
    pub fn new(trace: &LookupTrace) -> Self {
        let mut positions: FastHashMap<Addr, (Vec<u32>, usize)> = FastHashMap::default();
        for (i, a) in trace.iter().enumerate() {
            positions
                .entry(a.pw.start)
                .or_default()
                .0
                .push(u32::try_from(i).expect("trace indices fit in u32"));
        }
        OccurrenceIndex { positions }
    }

    /// The first position strictly greater than `now` at which `start` is
    /// looked up, or [`NEVER`].
    ///
    /// Queries must be made with non-decreasing `now` per address (the cursor
    /// only moves forward), which holds for trace-order replay.
    pub fn next_use_after(&mut self, start: Addr, now: u32) -> u32 {
        match self.positions.get_mut(&start) {
            None => NEVER,
            Some((list, cursor)) => {
                while *cursor < list.len() && list[*cursor] <= now {
                    *cursor += 1;
                }
                list.get(*cursor).copied().unwrap_or(NEVER)
            }
        }
    }

    /// Total occurrences of `start` in the trace.
    pub fn count(&self, start: Addr) -> usize {
        self.positions.get(&start).map_or(0, |(l, _)| l.len())
    }

    /// Rewinds every per-address cursor to the start of the trace, so the
    /// index can serve another in-order replay of the same trace without
    /// being rebuilt (the position lists are immutable; only cursors move).
    pub fn reset_cursors(&mut self) {
        for (_, cursor) in self.positions.values_mut() {
            *cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{PwAccess, PwDesc, PwTermination};

    fn trace_of(starts: &[u64]) -> LookupTrace {
        starts
            .iter()
            .map(|&a| PwAccess::new(PwDesc::new(Addr::new(a), 2, 6, PwTermination::TakenBranch)))
            .collect()
    }

    #[test]
    fn cursor_advances_monotonically() {
        let t = trace_of(&[1, 2, 1, 3, 1]);
        let mut idx = OccurrenceIndex::new(&t);
        assert_eq!(idx.next_use_after(Addr::new(1), 0), 2);
        assert_eq!(idx.next_use_after(Addr::new(1), 2), 4);
        assert_eq!(idx.next_use_after(Addr::new(1), 4), NEVER);
    }

    #[test]
    fn unknown_address_is_never() {
        let t = trace_of(&[1]);
        let mut idx = OccurrenceIndex::new(&t);
        assert_eq!(idx.next_use_after(Addr::new(9), 0), NEVER);
        assert_eq!(idx.count(Addr::new(9)), 0);
        assert_eq!(idx.count(Addr::new(1)), 1);
    }

    #[test]
    fn now_equal_to_position_moves_past_it() {
        let t = trace_of(&[7, 7]);
        let mut idx = OccurrenceIndex::new(&t);
        // At position 0 (the access itself), next use is 1; at 1, never.
        assert_eq!(idx.next_use_after(Addr::new(7), 0), 1);
        assert_eq!(idx.next_use_after(Addr::new(7), 1), NEVER);
    }
}
