//! Task keys and per-task seed derivation.
//!
//! A [`TaskKey`] names one unit of work — conventionally the ordered
//! coordinates of a simulation task such as `(config, app, variant, policy)`.
//! Its [`seed`](TaskKey::seed) is derived by hashing the components with
//! FNV-1a (a separator byte between components keeps `["ab","c"]` distinct
//! from `["a","bc"]`) and finalising with SplitMix64. The seed is therefore a
//! pure function of the key: independent of submission order, worker count,
//! platform and process, which is what makes randomized tasks reproducible
//! in isolation.

use std::fmt;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// SplitMix64 finalisation: one full mixing round over a 64-bit state.
/// Identical to the mixer used by `Prng::seed_from_u64` in `uopcache-model`,
/// so engine-derived seeds feed that generator with well-mixed state.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The ordered name of one task, e.g. `["zen3", "kafka", "v0", "LRU"]`.
///
/// Keys order lexicographically by component, display as `zen3/kafka/v0/LRU`,
/// and derive a stable 64-bit seed.
///
/// # Examples
///
/// ```
/// use uopcache_exec::TaskKey;
///
/// let k = TaskKey::new(["zen3", "kafka", "v0", "LRU"]);
/// assert_eq!(k.to_string(), "zen3/kafka/v0/LRU");
/// // The seed is a pure function of the key.
/// assert_eq!(k.seed(), TaskKey::new(["zen3", "kafka", "v0", "LRU"]).seed());
/// // Component boundaries matter.
/// assert_ne!(
///     TaskKey::new(["ab", "c"]).seed(),
///     TaskKey::new(["a", "bc"]).seed()
/// );
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskKey {
    parts: Vec<String>,
}

impl TaskKey {
    /// Builds a key from ordered components.
    pub fn new<I, S>(parts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TaskKey {
            parts: parts.into_iter().map(Into::into).collect(),
        }
    }

    /// The key's components, in order.
    pub fn parts(&self) -> &[String] {
        &self.parts
    }

    /// A new key with `part` appended — the child task's name. Used to key
    /// sub-tasks of a logical cell (e.g. per-representative segment runs of
    /// one sampled sweep cell) so their seeds derive from the same scheme.
    #[must_use]
    pub fn child(&self, part: impl Into<String>) -> Self {
        let mut parts = self.parts.clone();
        parts.push(part.into());
        TaskKey { parts }
    }

    /// The derived per-task seed: SplitMix64 over an FNV-1a hash of the
    /// components (with a 0x1F unit-separator byte between components).
    pub fn seed(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for part in &self.parts {
            for &b in part.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            h = (h ^ 0x1F).wrapping_mul(FNV_PRIME);
        }
        splitmix64(h)
    }
}

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.parts.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_across_constructions() {
        let a = TaskKey::new(["zen3", "kafka", "v0", "FURBYS"]);
        let b = TaskKey::new(
            ["zen3", "kafka", "v0", "FURBYS"]
                .iter()
                .map(ToString::to_string),
        );
        assert_eq!(a, b);
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn seeds_distinguish_component_boundaries() {
        let joined = TaskKey::new(["zen3kafka"]);
        let split = TaskKey::new(["zen3", "kafka"]);
        assert_ne!(joined.seed(), split.seed());
        assert_ne!(
            TaskKey::new(["a", "", "b"]).seed(),
            TaskKey::new(["a", "b"]).seed()
        );
    }

    #[test]
    fn nearby_keys_get_unrelated_seeds() {
        // SplitMix64 finalisation: flipping one character flips roughly half
        // the output bits.
        let a = TaskKey::new(["zen3", "kafka", "v0", "LRU"]).seed();
        let b = TaskKey::new(["zen3", "kafka", "v1", "LRU"]).seed();
        let differing = (a ^ b).count_ones();
        assert!((16..=48).contains(&differing), "{differing} bits differ");
    }

    #[test]
    fn child_appends_a_component() {
        let cell = TaskKey::new(["zen3", "kafka", "v0", "LRU"]);
        let seg = cell.child("rep3");
        assert_eq!(seg.to_string(), "zen3/kafka/v0/LRU/rep3");
        assert_eq!(seg, TaskKey::new(["zen3", "kafka", "v0", "LRU", "rep3"]));
        assert_ne!(seg.seed(), cell.seed());
    }

    #[test]
    fn ordering_is_lexicographic_and_display_joins() {
        let a = TaskKey::new(["a", "b"]);
        let b = TaskKey::new(["a", "c"]);
        assert!(a < b);
        assert_eq!(format!("{a}"), "a/b");
    }

    #[test]
    fn known_vector_pins_the_derivation() {
        // Pinned value: changing FNV/SplitMix constants (and thereby every
        // derived seed in golden files) must be a conscious decision.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }
}
