//! # uopcache-exec
//!
//! The parallel experiment engine: a zero-dependency (std-only) scoped-thread
//! work-stealing pool that executes simulation tasks in parallel while
//! guaranteeing **bit-identical results regardless of worker count or
//! scheduling order**.
//!
//! The determinism contract rests on three rules:
//!
//! 1. every task is named by a [`TaskKey`] — an ordered list of string
//!    components such as `["zen3", "kafka", "v0", "LRU"]`;
//! 2. any randomness a task needs comes from [`TaskKey::seed`], a SplitMix64
//!    finalisation of an FNV-1a hash of the key — a pure function of the key,
//!    never of submission order, worker id or wall clock;
//! 3. [`Engine::run`] returns outcomes in **submission order** (and callers
//!    merge by key), so completion order never leaks into results.
//!
//! A panicking task is caught on its worker and surfaced as a structured
//! [`TaskFailure`] (key + seed + panic message) instead of aborting the
//! sweep; sibling tasks keep running. `Engine::new(1)` runs tasks inline on
//! the caller thread, reproducing the serial path exactly.
//!
//! # Examples
//!
//! ```
//! use uopcache_exec::{Engine, TaskKey};
//!
//! let tasks: Vec<(TaskKey, u64)> = (0..8u64)
//!     .map(|i| (TaskKey::new(["demo", &format!("task{i}")]), i))
//!     .collect();
//! let serial = Engine::new(1).run(tasks.clone(), |_k, seed, i| i.wrapping_mul(seed));
//! let parallel = Engine::new(4).run(tasks, |_k, seed, i| i.wrapping_mul(seed));
//! // Same keys, same seeds, same values, same order — regardless of jobs.
//! assert_eq!(serial.outcomes, parallel.outcomes);
//! ```

pub mod clock;
pub mod pool;
pub mod seed;

pub use clock::{Clock, CountingClock, Deadline, ManualClock, NullClock, WallClock};
pub use pool::{Engine, ProgressEvent, SweepOutcome, TaskFailure, TaskOutcome, TaskProfile};
pub use seed::TaskKey;
