//! Injectable time sources for task profiling.
//!
//! The engine stamps every task's lifecycle (submitted / started / finished)
//! through a [`Clock`], so what "time" means is the caller's choice:
//!
//! * [`NullClock`] — always 0. The default: profiles exist but every
//!   duration is zero, which keeps canonical JSON byte-identical across
//!   worker counts and runs.
//! * [`WallClock`] — nanoseconds since construction, for real profiling.
//! * [`CountingClock`] — a monotonically increasing counter, for tests that
//!   need non-zero but reproducible orderings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic tick source. Ticks are opaque `u64`s; only differences
/// between them are meaningful, and the unit is the implementation's choice.
pub trait Clock: Send + Sync {
    /// The current tick.
    fn now(&self) -> u64;
}

/// The deterministic default: every reading is 0, so every derived duration
/// is 0 and profiles carry no run-to-run noise.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now(&self) -> u64 {
        0
    }
}

/// Real elapsed time: nanoseconds since the clock was created.
///
/// Readings are capped at `u64::MAX` nanoseconds (~584 years), which is not
/// a practical concern.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic test clock: each reading returns the next integer,
/// starting from 0. Readings taken from multiple threads are still unique
/// and monotone, though their interleaving follows the scheduler.
#[derive(Debug, Default)]
pub struct CountingClock {
    next: AtomicU64,
}

impl CountingClock {
    /// A counting clock starting at 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for CountingClock {
    fn now(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_always_zero() {
        let c = NullClock;
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn counting_clock_increments() {
        let c = CountingClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
