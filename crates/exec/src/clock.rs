//! Injectable time sources for task profiling.
//!
//! The engine stamps every task's lifecycle (submitted / started / finished)
//! through a [`Clock`], so what "time" means is the caller's choice:
//!
//! * [`NullClock`] — always 0. The default: profiles exist but every
//!   duration is zero, which keeps canonical JSON byte-identical across
//!   worker counts and runs.
//! * [`WallClock`] — nanoseconds since construction, for real profiling.
//! * [`CountingClock`] — a monotonically increasing counter, for tests that
//!   need non-zero but reproducible orderings.
//! * [`ManualClock`] — a clock the test advances by hand, for timeout logic
//!   (the serving layer's idle/stall deadlines run on this seam).
//!
//! The serving layer reuses the same seam for its connection timeouts: a
//! [`Deadline`] is a tick threshold derived from a `Clock`, so an event loop
//! can be driven by a [`ManualClock`] in tests (deterministic idle/stall
//! expiry) and a [`WallClock`] in production.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic tick source. Ticks are opaque `u64`s; only differences
/// between them are meaningful, and the unit is the implementation's choice.
/// [`Deadline`] assumes the [`WallClock`] convention of one tick per
/// nanosecond; deterministic clocks just need to advance consistently.
pub trait Clock: Send + Sync {
    /// The current tick.
    fn now(&self) -> u64;
}

/// A tick threshold on some [`Clock`]: "this much time past that reading".
///
/// Deadlines saturate instead of wrapping, so `Duration::MAX`-style "no
/// deadline" values behave as never-expiring rather than instantly expired.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct Deadline {
    at: u64,
}

impl Deadline {
    /// A deadline `after` past the clock's current reading, using the
    /// one-tick-per-nanosecond convention of [`WallClock`].
    pub fn after(clock: &dyn Clock, after: Duration) -> Deadline {
        Deadline {
            at: clock
                .now()
                .saturating_add(u64::try_from(after.as_nanos()).unwrap_or(u64::MAX)),
        }
    }

    /// A deadline that never expires.
    pub fn never() -> Deadline {
        Deadline { at: u64::MAX }
    }

    /// Whether the clock has reached this deadline.
    pub fn expired(&self, clock: &dyn Clock) -> bool {
        clock.now() >= self.at
    }
}

/// The deterministic default: every reading is 0, so every derived duration
/// is 0 and profiles carry no run-to-run noise.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now(&self) -> u64 {
        0
    }
}

/// Real elapsed time: nanoseconds since the clock was created.
///
/// Readings are capped at `u64::MAX` nanoseconds (~584 years), which is not
/// a practical concern.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic test clock: each reading returns the next integer,
/// starting from 0. Readings taken from multiple threads are still unique
/// and monotone, though their interleaving follows the scheduler.
#[derive(Debug, Default)]
pub struct CountingClock {
    next: AtomicU64,
}

impl CountingClock {
    /// A counting clock starting at 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for CountingClock {
    fn now(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// A clock that only moves when told to: `now()` returns the last value set
/// or advanced to. Tests drive timeout logic through it deterministically —
/// nothing expires until the test says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    ticks: AtomicU64,
}

impl ManualClock {
    /// A manual clock reading 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d` (one tick per nanosecond, saturating).
    pub fn advance(&self, d: Duration) {
        let ticks = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let mut cur = self.ticks.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_add(ticks);
            match self
                .ticks
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_always_zero() {
        let c = NullClock;
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn counting_clock_increments() {
        let c = CountingClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_on_command() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 0);
        c.advance(Duration::from_nanos(7));
        assert_eq!(c.now(), 7);
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), 1_000_000_007);
    }

    #[test]
    fn deadlines_expire_and_saturate() {
        let c = ManualClock::new();
        let d = Deadline::after(&c, Duration::from_nanos(10));
        assert!(!d.expired(&c));
        c.advance(Duration::from_nanos(9));
        assert!(!d.expired(&c));
        c.advance(Duration::from_nanos(1));
        assert!(d.expired(&c));
        let never = Deadline::never();
        c.advance(Duration::from_secs(1_000_000));
        assert!(!never.expired(&c));
        // Saturation: a huge offset never wraps into the past.
        let far = Deadline::after(&c, Duration::MAX);
        assert!(!far.expired(&c));
    }
}
