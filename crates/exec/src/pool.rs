//! The scoped-thread work-stealing pool.
//!
//! [`Engine::run`] executes a batch of keyed tasks. With `jobs == 1` the
//! tasks run inline on the caller thread in submission order — exactly the
//! serial path. With `jobs > 1` the batch is distributed round-robin over
//! per-worker deques; each worker drains its own deque front-first and steals
//! from the back of its siblings' deques when it runs dry. Because every
//! task is a pure function of its [`TaskKey`] and derived seed, and outcomes
//! are written to the slot of their submission index, the returned vector is
//! bit-identical for every worker count and every interleaving.

use crate::clock::{Clock, NullClock};
use crate::seed::TaskKey;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A structured task failure: the panic of one task, surfaced without
/// aborting the sweep. Carries everything needed to replay the task in
/// isolation: the key (which names config/app/variant/policy), the derived
/// seed, and the panic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskFailure {
    /// The failing task's key.
    pub key: TaskKey,
    /// The seed the task ran with.
    pub seed: u64,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} (seed {:#018x}) panicked: {}",
            self.key, self.seed, self.message
        )
    }
}

/// The outcome of one task, in submission order within a [`SweepOutcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskOutcome<R> {
    /// The task's key.
    pub key: TaskKey,
    /// The seed derived from the key.
    pub seed: u64,
    /// The task's value, or the stringified panic payload.
    pub result: Result<R, String>,
}

impl<R> TaskOutcome<R> {
    /// The structured failure, if the task panicked.
    pub fn failure(&self) -> Option<TaskFailure> {
        self.result.as_ref().err().map(|message| TaskFailure {
            key: self.key.clone(),
            seed: self.seed,
            message: message.clone(),
        })
    }
}

/// The lifecycle profile of one task, stamped through the engine's
/// [`Clock`].
///
/// With the default [`NullClock`] every tick is 0, so profiles are inert and
/// deterministic; inject a [`WallClock`](crate::clock::WallClock) via
/// [`Engine::with_clock`] to measure real queue waits and run times.
///
/// `worker` and `stolen` describe *scheduling*, which is inherently
/// nondeterministic under work stealing — canonical JSON renderings must
/// omit them (the sweep layer does).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskProfile {
    /// The task's key.
    pub key: TaskKey,
    /// The seed derived from the key.
    pub seed: u64,
    /// Clock tick when the task was enqueued.
    pub submitted: u64,
    /// Clock tick when a worker began executing the task.
    pub started: u64,
    /// Clock tick when the task finished (or panicked).
    pub finished: u64,
    /// The worker index that executed the task (0 on the serial path).
    pub worker: usize,
    /// Whether the task was stolen from a sibling's deque.
    pub stolen: bool,
}

impl TaskProfile {
    /// Ticks spent queued before a worker picked the task up.
    pub fn queue_wait(&self) -> u64 {
        self.started.saturating_sub(self.submitted)
    }

    /// Ticks spent executing.
    pub fn run_ticks(&self) -> u64 {
        self.finished.saturating_sub(self.started)
    }
}

/// All outcomes of one [`Engine::run`] batch, in submission order.
///
/// Deliberately not `PartialEq`: `elapsed` is wall-clock noise. Compare
/// [`outcomes`](Self::outcomes) — those are the deterministic part.
#[derive(Clone, Debug)]
pub struct SweepOutcome<R> {
    /// One outcome per submitted task, in submission order.
    pub outcomes: Vec<TaskOutcome<R>>,
    /// One lifecycle profile per submitted task, in submission order.
    pub profiles: Vec<TaskProfile>,
    /// Wall-clock time of the batch.
    pub elapsed: Duration,
}

impl<R> SweepOutcome<R> {
    /// Every structured failure, in submission order.
    pub fn failures(&self) -> Vec<TaskFailure> {
        self.outcomes
            .iter()
            .filter_map(TaskOutcome::failure)
            .collect()
    }

    /// Unwraps every task value, in submission order.
    ///
    /// # Panics
    ///
    /// Panics with the full list of structured failures if any task failed —
    /// for callers (like the experiment drivers) whose tables cannot be
    /// rendered from partial results.
    pub fn expect_all(self, context: &str) -> Vec<R> {
        let failures = self.failures();
        assert!(
            failures.is_empty(),
            "{context}: {} task(s) failed:\n{}",
            failures.len(),
            failures
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        self.outcomes
            .into_iter()
            .map(|o| match o.result {
                Ok(v) => v,
                Err(_) => unreachable!("failures checked above"),
            })
            .collect()
    }

    /// Tasks completed per second, by wall clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            0.0
        }
    }
}

/// A progress snapshot, delivered to the engine's progress sink after each
/// task completes.
#[derive(Clone, Debug)]
pub struct ProgressEvent {
    /// Tasks completed so far (including the one just finished).
    pub done: usize,
    /// Tasks in the batch.
    pub total: usize,
    /// The key of the task that just completed.
    pub key: TaskKey,
    /// Whether that task failed.
    pub failed: bool,
    /// Time since the batch started.
    pub elapsed: Duration,
}

impl ProgressEvent {
    /// Completed tasks per second so far.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.done as f64 / secs
        } else {
            0.0
        }
    }
}

type ProgressSink = Box<dyn Fn(&ProgressEvent) + Send + Sync>;

/// The parallel experiment engine.
///
/// See the [crate docs](crate) for the determinism contract and an example.
pub struct Engine {
    jobs: usize,
    progress: Option<ProgressSink>,
    clock: Arc<dyn Clock>,
}

impl Engine {
    /// An engine with `jobs` workers (clamped to at least 1). `jobs == 1`
    /// runs tasks inline on the caller thread, in submission order.
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            progress: None,
            clock: Arc::new(NullClock),
        }
    }

    /// The machine's available parallelism (1 if it cannot be determined).
    pub fn default_parallelism() -> usize {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Installs the clock that stamps [`TaskProfile`]s. The default
    /// [`NullClock`] reads 0 forever, keeping profiles deterministic; inject
    /// a [`WallClock`](crate::clock::WallClock) for real measurements.
    #[must_use]
    pub fn with_clock(mut self, clock: impl Clock + 'static) -> Self {
        self.clock = Arc::new(clock);
        self
    }

    /// Installs a progress sink, called after every task completion (from
    /// whichever thread completed it).
    #[must_use]
    pub fn with_progress(mut self, sink: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(sink));
        self
    }

    /// Installs a progress sink that prints a `[tag] done/total key (rate/s)`
    /// line to stderr after each completion — the observability hook for
    /// long reproductions.
    #[must_use]
    pub fn with_stderr_progress(self, tag: &str) -> Self {
        let tag = tag.to_string();
        self.with_progress(move |ev| {
            eprintln!(
                "[{tag}] {}/{} {}{} ({:.1} tasks/s)",
                ev.done,
                ev.total,
                ev.key,
                if ev.failed { " FAILED" } else { "" },
                ev.throughput()
            );
        })
    }

    /// Runs every task and returns the outcomes **in submission order**.
    ///
    /// Each task is `f(&key, seed, input)` where `seed == key.seed()`. A
    /// panicking task yields `Err(message)` in its slot; siblings are
    /// unaffected.
    // audit:spawn-site — scoped workers: std::thread::scope joins every worker before return
    pub fn run<I, R, F>(&self, tasks: Vec<(TaskKey, I)>, f: F) -> SweepOutcome<R>
    where
        I: Send,
        R: Send,
        F: Fn(&TaskKey, u64, I) -> R + Sync,
    {
        let started = Instant::now(); // audit:allow(no-ambient-time) — elapsed feeds human throughput display only; documented wall-clock noise excluded from Eq
        let total = tasks.len();
        let done = AtomicUsize::new(0);
        let clock = &self.clock;

        // (worker, stolen, submitted-tick) → outcome + lifecycle profile.
        let run_one = |key: TaskKey,
                       input: I,
                       worker: usize,
                       stolen: bool,
                       submitted: u64|
         -> (TaskOutcome<R>, TaskProfile) {
            let seed = key.seed();
            let started_tick = clock.now();
            let result = catch_unwind(AssertUnwindSafe(|| f(&key, seed, input)))
                .map_err(|payload| panic_message(payload.as_ref()));
            let finished_tick = clock.now();
            let outcome = TaskOutcome { key, seed, result };
            let profile = TaskProfile {
                key: outcome.key.clone(),
                seed,
                submitted,
                started: started_tick,
                finished: finished_tick,
                worker,
                stolen,
            };
            if let Some(sink) = &self.progress {
                sink(&ProgressEvent {
                    done: done.fetch_add(1, Ordering::Relaxed) + 1,
                    total,
                    key: outcome.key.clone(),
                    failed: outcome.result.is_err(),
                    elapsed: started.elapsed(),
                });
            }
            (outcome, profile)
        };

        let workers = self.jobs.min(total.max(1));
        if workers <= 1 {
            // The serial path: inline, submission order, no threads.
            let mut outcomes = Vec::with_capacity(total);
            let mut profiles = Vec::with_capacity(total);
            for (key, input) in tasks {
                let submitted = clock.now();
                let (outcome, profile) = run_one(key, input, 0, false, submitted);
                outcomes.push(outcome);
                profiles.push(profile);
            }
            return SweepOutcome {
                outcomes,
                profiles,
                elapsed: started.elapsed(),
            };
        }

        // Per-worker deques, filled round-robin by submission index. Each
        // entry carries its owner's index so a popper can tell a steal from
        // a local dequeue.
        // One enqueued job: submission index, key, input, submission tick.
        type QueuedJob<I> = (usize, TaskKey, I, u64);
        let queues: Vec<Mutex<VecDeque<QueuedJob<I>>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (idx, (key, input)) in tasks.into_iter().enumerate() {
            let submitted = clock.now();
            lock_clean(&queues[idx % workers]).push_back((idx, key, input, submitted));
        }
        type Finished<R> = (TaskOutcome<R>, TaskProfile);
        let slots: Vec<Mutex<Option<Finished<R>>>> = (0..total).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let slots = &slots;
                let run_one = &run_one;
                scope.spawn(move || {
                    loop {
                        // Own deque first (front = submission order). Bind the
                        // popped value so the guard drops here — holding our
                        // own lock while probing siblings would let two
                        // draining workers deadlock on each other's queues.
                        let local = lock_clean(&queues[w]).pop_front();
                        let job = local.map(|j| (j, false)).or_else(|| {
                            // ...then steal from the back of a sibling's.
                            (1..workers).find_map(|d| {
                                lock_clean(&queues[(w + d) % workers])
                                    .pop_back()
                                    .map(|j| (j, true))
                            })
                        });
                        let Some(((idx, key, input, submitted), stolen)) = job else {
                            // No task regeneration: empty everywhere = done.
                            break;
                        };
                        let pair = run_one(key, input, w, stolen, submitted);
                        *lock_clean(&slots[idx]) = Some(pair);
                    }
                });
            }
        });

        let mut outcomes = Vec::with_capacity(total);
        let mut profiles = Vec::with_capacity(total);
        for slot in slots {
            let (outcome, profile) = lock_clean(&slot)
                .take()
                .expect("every submitted task writes its slot");
            outcomes.push(outcome);
            profiles.push(profile);
        }
        SweepOutcome {
            outcomes,
            profiles,
            elapsed: started.elapsed(),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("jobs", &self.jobs)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// Locks a mutex, tolerating poisoning: the engine catches task panics
/// before they can unwind through a held lock, so a poisoned mutex can only
/// mean a bug in the engine itself — the data is still just task bookkeeping.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Stringifies a panic payload (mirrors the audit crate's conformance
/// harness).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn keys(n: usize) -> Vec<(TaskKey, usize)> {
        (0..n)
            .map(|i| (TaskKey::new(["test", &format!("t{i}")]), i))
            .collect()
    }

    #[test]
    fn outcomes_preserve_submission_order_at_any_width() {
        for jobs in [1, 2, 3, 8, 33] {
            let out = Engine::new(jobs).run(keys(100), |_k, _s, i| i * 2);
            assert_eq!(out.outcomes.len(), 100, "jobs={jobs}");
            for (i, o) in out.outcomes.iter().enumerate() {
                assert_eq!(o.result, Ok(i * 2), "jobs={jobs}");
                assert_eq!(o.seed, o.key.seed());
            }
        }
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let spin = |i: usize| u32::try_from(i).unwrap_or(u32::MAX);
        let serial = Engine::new(1).run(keys(64), |_k, seed, i| seed.rotate_left(spin(i)));
        let parallel = Engine::new(7).run(keys(64), |_k, seed, i| seed.rotate_left(spin(i)));
        assert_eq!(serial.outcomes, parallel.outcomes);
    }

    #[test]
    fn panics_become_structured_failures_without_poisoning_siblings() {
        let out = Engine::new(4).run(keys(32), |key, _s, i| {
            assert!(i != 13, "boom at {key}");
            i
        });
        let failures = out.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].key, TaskKey::new(["test", "t13"]));
        assert_eq!(failures[0].seed, failures[0].key.seed());
        assert!(failures[0].message.contains("boom"), "{failures:?}");
        let ok = out.outcomes.iter().filter(|o| o.result.is_ok()).count();
        assert_eq!(ok, 31, "siblings must complete");
    }

    #[test]
    fn progress_sink_sees_every_completion() {
        let seen = std::sync::Arc::new(AtomicU64::new(0));
        let max_done = std::sync::Arc::new(AtomicU64::new(0));
        let (seen_sink, max_sink) = (seen.clone(), max_done.clone());
        Engine::new(3)
            .with_progress(move |ev| {
                seen_sink.fetch_add(1, Ordering::Relaxed);
                max_sink.fetch_max(ev.done as u64, Ordering::Relaxed);
                assert_eq!(ev.total, 20);
            })
            .run(keys(20), |_k, _s, i| i);
        assert_eq!(seen.load(Ordering::Relaxed), 20);
        assert_eq!(max_done.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn expect_all_returns_values_and_reports_failures() {
        let vals = Engine::new(2)
            .run(keys(5), |_k, _s, i| i + 1)
            .expect_all("smoke");
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);

        let out = Engine::new(2).run(keys(3), |_k, _s, i| {
            assert!(i != 1, "injected");
            i
        });
        let err = catch_unwind(AssertUnwindSafe(|| out.expect_all("ctx"))).unwrap_err();
        assert!(panic_message(err.as_ref()).contains("ctx"), "context kept");
    }

    #[test]
    fn profiles_cover_every_task_with_null_clock_zeros() {
        for jobs in [1, 5] {
            let out = Engine::new(jobs).run(keys(24), |_k, _s, i| i);
            assert_eq!(out.profiles.len(), 24, "jobs={jobs}");
            for (i, p) in out.profiles.iter().enumerate() {
                assert_eq!(p.key, out.outcomes[i].key, "submission order kept");
                assert_eq!(p.seed, p.key.seed());
                assert_eq!((p.submitted, p.started, p.finished), (0, 0, 0));
                assert_eq!(p.queue_wait(), 0);
                assert_eq!(p.run_ticks(), 0);
            }
        }
    }

    #[test]
    fn counting_clock_yields_ordered_nonzero_profiles() {
        let out = Engine::new(1)
            .with_clock(crate::clock::CountingClock::new())
            .run(keys(3), |_k, _s, i| i);
        for p in &out.profiles {
            assert!(p.submitted < p.started, "{p:?}");
            assert!(p.started < p.finished, "{p:?}");
            assert!(!p.stolen, "serial path never steals");
            assert_eq!(p.worker, 0);
        }
        // Serial ticks are strictly increasing across tasks.
        assert!(out.profiles[0].finished < out.profiles[1].submitted);
    }

    #[test]
    fn panicking_tasks_still_get_profiles() {
        let out = Engine::new(3).run(keys(8), |_k, _s, i| {
            assert!(i != 2, "boom");
            i
        });
        assert_eq!(out.profiles.len(), 8);
        assert_eq!(out.profiles[2].key, out.outcomes[2].key);
        assert!(out.outcomes[2].result.is_err());
    }

    #[test]
    fn zero_jobs_clamps_to_one_and_empty_batches_work() {
        let out = Engine::new(0).run(Vec::<(TaskKey, ())>::new(), |_k, _s, ()| ());
        assert!(out.outcomes.is_empty());
        assert_eq!(Engine::new(0).jobs(), 1);
    }
}
