//! Hint injection: the software/hardware interface carrying weight groups.
//!
//! The paper injects each PW's 3-bit weight group into the program binary via
//! a compiler pass, using reserved bits of branch instruction encodings
//! (following Thermometer); the decoder extracts the bits and forwards them
//! with the micro-ops to the accumulator. This crate models that channel as a
//! [`HintMap`] attached to the deployed executable: a mapping from PW start
//! address to its weight group, serialisable alongside the binary.

use uopcache_model::hash::FastHashMap;
use uopcache_model::json::{FromJson, Json, JsonError, ToJson};
use uopcache_model::Addr;

/// Weight-group hints for a program binary.
///
/// # Examples
///
/// ```
/// use uopcache_core::HintMap;
/// use uopcache_model::Addr;
///
/// let mut hints = HintMap::new(3);
/// hints.set(Addr::new(0x400100), 5);
/// assert_eq!(hints.get(Addr::new(0x400100)), 5);
/// assert_eq!(hints.get(Addr::new(0x999)), 0); // unmarked code is weight 0
///
/// let json = hints.to_json().unwrap();
/// let restored = HintMap::from_json(&json).unwrap();
/// assert_eq!(restored.get(Addr::new(0x400100)), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HintMap {
    /// Number of reserved bits per hint (paper: 3 → 8 weight groups).
    bits: u8,
    /// Per-start weights, in a fast simulator-internal map: `get` runs per
    /// resident on every FURBYS victim/bypass decision.
    weights: FastHashMap<Addr, u8>,
}

impl HintMap {
    /// Creates an empty hint map with `bits` reserved bits per branch.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "hint widths of 1..=8 bits are supported"
        );
        HintMap {
            bits,
            weights: FastHashMap::default(),
        }
    }

    /// The number of weight groups expressible (`2^bits`).
    pub fn groups(&self) -> u16 {
        1u16 << self.bits
    }

    /// The hint width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Sets the weight for a PW start address.
    ///
    /// # Panics
    ///
    /// Panics if `weight` does not fit in the hint width.
    pub fn set(&mut self, start: Addr, weight: u8) {
        assert!(
            u16::from(weight) < self.groups(),
            "weight {weight} does not fit in {} bits",
            self.bits
        );
        self.weights.insert(start, weight);
    }

    /// The weight for a start address; unmarked code reads as 0 (coldest).
    pub fn get(&self, start: Addr) -> u8 {
        self.weights.get(&start).copied().unwrap_or(0)
    }

    /// Number of marked start addresses.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether no hints are present.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates over `(start, weight)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Addr, &u8)> {
        self.weights.iter()
    }

    /// Serialises to JSON (the artifact's on-disk hint format). Entries are
    /// written in ascending start-address order so the output is
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Returns an error if serialisation fails (it cannot for this type, but
    /// the signature is honest about the serialisation boundary).
    pub fn to_json(&self) -> Result<String, JsonError> {
        let mut entries: Vec<(u64, u8)> = self.weights.iter().map(|(a, &w)| (a.get(), w)).collect();
        entries.sort_unstable();
        let obj = Json::Obj(vec![
            ("bits".to_string(), Json::U64(u64::from(self.bits))),
            ("weights".to_string(), entries.to_json()),
        ]);
        Ok(obj.to_string())
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if `s` is not a valid serialised [`HintMap`] — wrong
    /// shape, an unsupported hint width, or a weight that does not fit.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let j = Json::parse(s)?;
        let bits = u8::from_json(j.field("bits")?)?;
        if !(1..=8).contains(&bits) {
            return Err(JsonError(format!("hint width {bits} outside 1..=8")));
        }
        let entries = Vec::<(u64, u8)>::from_json(j.field("weights")?)?;
        let mut map = HintMap::new(bits);
        for (addr, weight) in entries {
            if u16::from(weight) >= map.groups() {
                return Err(JsonError(format!(
                    "weight {weight} does not fit in {bits} bits"
                )));
            }
            map.set(Addr::new(addr), weight);
        }
        Ok(map)
    }
}

impl FromIterator<(Addr, u8)> for HintMap {
    /// Collects with the paper's default width of 3 bits.
    fn from_iter<T: IntoIterator<Item = (Addr, u8)>>(iter: T) -> Self {
        let mut map = HintMap::new(3);
        for (a, w) in iter {
            map.set(a, w);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_follow_bits() {
        assert_eq!(HintMap::new(1).groups(), 2);
        assert_eq!(HintMap::new(3).groups(), 8);
        assert_eq!(HintMap::new(8).groups(), 256);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_weight_rejected() {
        let mut h = HintMap::new(3);
        h.set(Addr::new(1), 8);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn zero_bits_rejected() {
        let _ = HintMap::new(0);
    }

    #[test]
    fn collect_and_iterate() {
        let h: HintMap = [(Addr::new(1), 3u8), (Addr::new(2), 7u8)]
            .into_iter()
            .collect();
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(h.iter().count(), 2);
    }

    #[test]
    fn json_round_trip_preserves_bits() {
        let mut h = HintMap::new(4);
        h.set(Addr::new(0x10), 15);
        let json = h.to_json().unwrap();
        let back = HintMap::from_json(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.bits(), 4);
    }
}
