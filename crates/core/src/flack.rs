//! FLACK: FOO-based seLectively-bypassing Asynchronizing Cost-varying
//! selective-data-Keeping — the offline near-optimal policy.

use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, LookupTrace, UopCacheConfig, UopCacheStats};
use uopcache_offline::foo::{self, FooConfig, FooSolution, IntervalMode, Objective};
use uopcache_offline::replay::{self, EvictionTiming};

/// The FLACK offline policy, with per-feature switches for the Fig. 10
/// ablation study.
///
/// Feature mapping onto the solver/replay machinery:
///
/// | feature | off | on |
/// |---|---|---|
/// | `asynchrony` (A) | eager eviction (raw FOO) | lazy, insertion-time eviction |
/// | `variable_cost` (VC) | object-hit-ratio benefit | `cost/size` benefit |
/// | `selective_bypass` (SB) | exact-window intervals | coverage intervals (partial hits, keep-larger) |
///
/// # Examples
///
/// ```
/// use uopcache_core::Flack;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let trace = build_trace(AppId::Postgres, InputVariant::default(), 5_000);
/// let outcome = Flack::new().run(&trace, &UopCacheConfig::zen3());
/// let foo_only = Flack::ablation(false, false, false).run(&trace, &UopCacheConfig::zen3());
/// assert!(outcome.stats.uops_missed <= foo_only.stats.uops_missed);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct Flack {
    /// Lazy (insertion-time) eviction for asynchronous lookup/insertion.
    pub asynchrony: bool,
    /// Cost-aware benefit (`cost/size` per entry).
    pub variable_cost: bool,
    /// Coverage intervals enabling partial hits.
    pub selective_bypass: bool,
}

impl Flack {
    /// Full FLACK: all three features enabled.
    pub fn new() -> Self {
        Flack {
            asynchrony: true,
            variable_cost: true,
            selective_bypass: true,
        }
    }

    /// Raw FOO baseline / ablation points for Fig. 10
    /// (`ablation(false, false, false)` is FOO; `(true, false, false)` is A;
    /// `(true, true, false)` is A+VC; `(true, true, true)` is FLACK).
    pub fn ablation(asynchrony: bool, variable_cost: bool, selective_bypass: bool) -> Self {
        Flack {
            asynchrony,
            variable_cost,
            selective_bypass,
        }
    }

    /// Short label used in figures.
    pub fn label(&self) -> &'static str {
        match (self.asynchrony, self.variable_cost, self.selective_bypass) {
            (false, false, false) => "FOO",
            (true, false, false) => "A",
            (true, true, false) => "A+VC",
            (true, true, true) => "FLACK",
            _ => "FLACK-variant",
        }
    }

    /// The solver configuration this variant uses.
    pub fn foo_config(&self) -> FooConfig {
        FooConfig {
            objective: if self.variable_cost {
                Objective::CostAware
            } else {
                Objective::ObjectHitRatio
            },
            interval_mode: if self.selective_bypass {
                IntervalMode::Coverage
            } else {
                IntervalMode::ExactWindow
            },
            line_bytes: 64,
        }
    }

    /// The replay timing this variant uses.
    pub fn timing(&self) -> EvictionTiming {
        if self.asynchrony {
            EvictionTiming::Lazy
        } else {
            EvictionTiming::Eager
        }
    }

    /// Solves and replays the trace, returning the decisions, the achieved
    /// statistics and the per-start hit-rate profile (STEPs 3-5 of the
    /// FURBYS pipeline).
    pub fn run(&self, trace: &LookupTrace, cfg: &UopCacheConfig) -> FlackOutcome {
        let solution = foo::solve(trace, cfg, &self.foo_config());
        let (stats, obs) = replay::replay_observed(trace, cfg, &solution, self.timing());
        let hit_rates = uopcache_policies::profile::hit_rates_from_observations(obs);
        FlackOutcome {
            solution,
            stats,
            hit_rates,
        }
    }
}

impl Default for Flack {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything a FLACK run produces.
#[derive(Clone, Debug)]
pub struct FlackOutcome {
    /// The keep/evict schedule from the flow solve.
    pub solution: FooSolution,
    /// Statistics of the replay through the set-associative cache.
    pub stats: UopCacheStats,
    /// Micro-op-weighted hit rate per start address under FLACK's decisions.
    pub hit_rates: FastHashMap<Addr, f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_cache::{LruPolicy, UopCache};
    use uopcache_offline::BeladyPolicy;
    use uopcache_policies::run_trace;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    fn cfg() -> UopCacheConfig {
        UopCacheConfig::zen3()
    }

    #[test]
    fn labels() {
        assert_eq!(Flack::new().label(), "FLACK");
        assert_eq!(Flack::ablation(false, false, false).label(), "FOO");
        assert_eq!(Flack::ablation(true, false, false).label(), "A");
        assert_eq!(Flack::ablation(true, true, false).label(), "A+VC");
    }

    #[test]
    fn each_feature_helps_or_is_neutral_on_average() {
        // Accumulate missed uops across a few apps; features must not hurt in
        // aggregate (the paper's Fig. 10 shows monotone improvement).
        let apps = [AppId::Kafka, AppId::Postgres, AppId::Python];
        let variants = [
            Flack::ablation(false, false, false),
            Flack::ablation(true, false, false),
            Flack::ablation(true, true, false),
            Flack::new(),
        ];
        let mut missed = [0u64; 4];
        for app in apps {
            let t = build_trace(app, InputVariant(0), 12_000);
            for (i, v) in variants.iter().enumerate() {
                missed[i] += v.run(&t, &cfg()).stats.uops_missed;
            }
        }
        assert!(missed[1] <= missed[0], "A should help: {missed:?}");
        assert!(missed[2] <= missed[1], "VC should help: {missed:?}");
        assert!(missed[3] <= missed[2], "SB should help: {missed:?}");
    }

    #[test]
    fn flack_beats_belady_in_aggregate() {
        let apps = [AppId::Kafka, AppId::Postgres, AppId::Tomcat];
        let mut flack_missed = 0u64;
        let mut belady_missed = 0u64;
        for app in apps {
            let t = build_trace(app, InputVariant(0), 15_000);
            flack_missed += Flack::new().run(&t, &cfg()).stats.uops_missed;
            let mut bel = UopCache::new(cfg(), Box::new(BeladyPolicy::from_trace(&t)));
            belady_missed += run_trace(&mut bel, &t).uops_missed;
        }
        assert!(
            flack_missed < belady_missed,
            "FLACK {flack_missed} should beat Belady {belady_missed}"
        );
    }

    #[test]
    fn flack_beats_lru_substantially() {
        let t = build_trace(AppId::Mysql, InputVariant(0), 20_000);
        let mut lru = UopCache::new(cfg(), Box::new(LruPolicy::new()));
        let lru_stats = run_trace(&mut lru, &t);
        let flack = Flack::new().run(&t, &cfg());
        let reduction = flack.stats.miss_reduction_vs(&lru_stats);
        assert!(reduction > 10.0, "got {reduction:.2}%");
    }

    #[test]
    fn hit_rates_are_probabilities() {
        let t = build_trace(AppId::Drupal, InputVariant(0), 8_000);
        let out = Flack::new().run(&t, &cfg());
        assert!(!out.hit_rates.is_empty());
        assert!(out.hit_rates.values().all(|&r| (0.0..=1.0).contains(&r)));
    }
}
