//! Phase-aware FURBYS: an implementation of the paper's future-work
//! direction (§VII) — "a better policy should consider more globally cold
//! but locally hot PWs".
//!
//! Instead of one whole-execution weight table, profiling splits the training
//! trace into time segments and derives a weight table per segment plus the
//! global table. At runtime the hardware keeps a score per table — a table
//! earns credit whenever its weights *agree* with observed behaviour (a
//! high-weight PW hits, a low-weight PW misses) — and periodically adopts the
//! best-scoring table, set-dueling style. A phase in which globally-cold code
//! runs hot is then served by the segment table that profiled that phase.

use crate::furbys::FurbysPolicy;
use crate::hints::HintMap;
use crate::weights::{compute_weights, WeightConfig};
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::{PwDesc, UopCacheConfig};
use uopcache_policies::profile::hit_rates_from_observations;

/// How many lookups between table re-elections.
const EPOCH: u64 = 4096;
/// Weight at or above which a table "expects" a hit.
const HOT_WEIGHT: u8 = 4;

/// Per-phase weight tables plus the whole-execution table.
#[derive(Clone, Debug)]
pub struct PhasedProfile {
    /// `tables[0]` is the whole-execution table; the rest are per-segment.
    pub tables: Vec<HintMap>,
}

impl PhasedProfile {
    /// Builds a phased profile from per-access oracle observations
    /// (`(start, hit_uops, total_uops)` in trace order), splitting the trace
    /// into `segments` equal parts.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn from_observations(
        obs: &[(uopcache_model::Addr, u32, u32)],
        cfg: &UopCacheConfig,
        wcfg: &WeightConfig,
        segments: usize,
    ) -> Self {
        assert!(segments > 0, "need at least one segment");
        let mut tables = Vec::with_capacity(segments + 1);
        tables.push(compute_weights(
            &hit_rates_from_observations(obs.iter().copied()),
            cfg,
            wcfg,
        ));
        let seg_len = obs.len().div_ceil(segments).max(1);
        for chunk in obs.chunks(seg_len) {
            tables.push(compute_weights(
                &hit_rates_from_observations(chunk.iter().copied()),
                cfg,
                wcfg,
            ));
        }
        PhasedProfile { tables }
    }
}

/// FURBYS with runtime selection among phase weight tables.
///
/// Wraps one [`FurbysPolicy`] per table; all replacement metadata (SRRIP
/// bits, pitfall detector) lives in the *active* policy's copy, so switching
/// tables swaps the weight interpretation, not the recency state — mirroring
/// a hardware design in which only the 3-bit weight source multiplexes.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_core::phased::{PhasedProfile, PhasedFurbysPolicy};
/// use uopcache_core::WeightConfig;
/// use uopcache_model::{Addr, UopCacheConfig};
///
/// let cfg = UopCacheConfig::zen3();
/// let obs = vec![(Addr::new(0x1000), 4, 4), (Addr::new(0x2000), 0, 4)];
/// let profile = PhasedProfile::from_observations(&obs, &cfg, &WeightConfig::default(), 2);
/// let cache = UopCache::new(cfg, Box::new(PhasedFurbysPolicy::new(profile)));
/// assert_eq!(cache.policy_name(), "FURBYS-phased");
/// ```
pub struct PhasedFurbysPolicy {
    tables: Vec<HintMap>,
    /// The single FURBYS engine; its hint table is swapped on re-election.
    engine: FurbysPolicy,
    active: usize,
    scores: Vec<i64>,
    lookups: u64,
}

impl PhasedFurbysPolicy {
    /// Creates the policy with the paper's FURBYS hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no tables.
    pub fn new(profile: PhasedProfile) -> Self {
        assert!(
            !profile.tables.is_empty(),
            "profile must have at least one table"
        );
        let scores = vec![0; profile.tables.len()];
        let engine = FurbysPolicy::new(profile.tables[0].clone());
        PhasedFurbysPolicy {
            tables: profile.tables,
            engine,
            active: 0,
            scores,
            lookups: 0,
        }
    }

    /// The index of the currently active table (0 = whole-execution).
    pub fn active_table(&self) -> usize {
        self.active
    }

    fn credit(&mut self, pw: &PwDesc, hit: bool) {
        for (table, score) in self.tables.iter().zip(&mut self.scores) {
            let expects_hit = table.get(pw.start) >= HOT_WEIGHT;
            if expects_hit == hit {
                *score += 1;
            }
        }
    }

    fn maybe_reelect(&mut self) {
        if !self.lookups.is_multiple_of(EPOCH) {
            return;
        }
        let best = self
            .scores
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, usize::MAX - i)) // ties prefer lower index
            .map(|(i, _)| i)
            .expect("non-empty scores");
        if best != self.active {
            self.active = best;
            self.engine.replace_hints(self.tables[best].clone());
        }
        for s in &mut self.scores {
            *s /= 2; // exponential decay keeps the election responsive
        }
    }
}

impl PwReplacementPolicy for PhasedFurbysPolicy {
    fn name(&self) -> &'static str {
        "FURBYS-phased"
    }

    fn on_lookup(&mut self, pw: &PwDesc) {
        self.lookups += 1;
        self.maybe_reelect();
        self.engine.on_lookup(pw);
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        self.credit(&meta.desc, true);
        self.engine.on_hit(set, meta);
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        // An insertion follows a (full or partial) miss.
        self.credit(&meta.desc, false);
        self.engine.on_insert(set, meta);
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        self.engine.on_evict(set, meta);
    }

    fn on_invalidate(&mut self, set: usize, meta: &PwMeta) {
        self.engine.on_invalidate(set, meta);
    }

    fn should_bypass(
        &mut self,
        set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        self.engine
            .should_bypass(set, incoming, needed_entries, free_entries, resident)
    }

    fn choose_victim(&mut self, set: usize, incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        self.engine.choose_victim(set, incoming, resident)
    }

    fn last_selection_was_fallback(&self) -> bool {
        self.engine.last_selection_was_fallback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, LookupTrace, PwAccess, PwTermination};

    fn obs_for(starts: &[(u64, u32, u32)]) -> Vec<(Addr, u32, u32)> {
        starts
            .iter()
            .map(|&(s, h, t)| (Addr::new(s), h, t))
            .collect()
    }

    #[test]
    fn profile_has_global_plus_segment_tables() {
        let cfg = UopCacheConfig::zen3();
        let obs = obs_for(&[
            (0x1000, 4, 4),
            (0x2000, 0, 4),
            (0x3000, 4, 4),
            (0x4000, 0, 4),
        ]);
        let p = PhasedProfile::from_observations(&obs, &cfg, &WeightConfig::default(), 2);
        assert_eq!(p.tables.len(), 3);
    }

    #[test]
    fn election_moves_to_the_agreeing_table() {
        let cfg = UopCacheConfig::zen3();
        // Table 1 (segment) marks 0x1000 hot; global (diluted) marks it cold.
        let hot = Addr::new(0x1000);
        let mut global = HintMap::new(3);
        global.set(hot, 0);
        let mut segment = HintMap::new(3);
        segment.set(hot, 7);
        let mut p = PhasedFurbysPolicy::new(PhasedProfile {
            tables: vec![global, segment],
        });
        let pw = PwDesc::new(hot, 4, 12, PwTermination::TakenBranch);
        let meta = PwMeta {
            desc: pw,
            slot: 0,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        };
        // Stream of hits on the hot PW: segment table agrees, global does not.
        for _ in 0..(EPOCH + 1) {
            p.on_lookup(&pw);
            p.on_hit(0, &meta);
        }
        assert_eq!(p.active_table(), 1, "segment table should win the election");
        let _ = cfg;
    }

    #[test]
    fn works_as_a_cache_policy_end_to_end() {
        let cfg = UopCacheConfig::zen3();
        let trace: LookupTrace = (0..2000u64)
            .map(|i| {
                PwAccess::new(PwDesc::new(
                    Addr::new(0x1000 + (i % 40) * 64),
                    4,
                    12,
                    PwTermination::TakenBranch,
                ))
            })
            .collect();
        let obs: Vec<_> = trace
            .iter()
            .map(|a| (a.pw.start, a.pw.uops, a.pw.uops))
            .collect();
        let profile = PhasedProfile::from_observations(&obs, &cfg, &WeightConfig::default(), 4);
        let mut cache =
            uopcache_cache::UopCache::new(cfg, Box::new(PhasedFurbysPolicy::new(profile)));
        let stats = uopcache_policies::run_trace(&mut cache, &trace);
        assert_eq!(stats.lookups, 2000);
        assert!(stats.uops_hit > 0);
    }
}
