//! # uopcache-core
//!
//! The paper's primary contribution: **FLACK**, a near-optimal offline
//! replacement policy for the micro-op cache, and **FURBYS**, the practical
//! profile-guided online policy that mimics it.
//!
//! ## FLACK (offline, near-optimal)
//!
//! [`Flack`] extends the flow-based offline optimal (FOO, in
//! `uopcache-offline`) with the three micro-op cache properties that make
//! Belady and plain FOO sub-optimal (§III):
//!
//! 1. **Variable disproportional costs** — the benefit of a kept window is
//!    its micro-ops (`cost/size` per entry), not 1 per object or per byte;
//! 2. **Partial hits** — coverage intervals let a stored window serve
//!    overlapping lookups with the same start address, and the larger window
//!    is preferentially kept;
//! 3. **Asynchronous lookup/insertion** — lazy eviction keeps a
//!    to-be-evicted window resident until the space is actually needed.
//!
//! ## FURBYS (online, practical)
//!
//! [`FurbysPolicy`] consumes a FLACK-derived profile: per-start-address hit
//! rates are grouped into `2^bits` weight classes per cache set with the
//! Jenks natural-breaks algorithm ([`jenks`]), injected into the binary as
//! 3-bit hints ([`HintMap`]), and used online to (a) evict the minimum-weight
//! resident, (b) degrade to SRRIP for one decision when the depth-2 local
//! miss-pitfall detector sees the same way evicted repeatedly, and (c)
//! bypass insertions whose weight is below the set minimum minus `K`.
//!
//! [`FurbysPipeline`] wires the whole 7-step procedure together.
//!
//! # Examples
//!
//! ```
//! use uopcache_core::{Flack, FurbysPipeline};
//! use uopcache_model::FrontendConfig;
//! use uopcache_trace::{build_trace, AppId, InputVariant};
//!
//! let cfg = FrontendConfig::zen3();
//! let train = build_trace(AppId::Kafka, InputVariant::default(), 8_000);
//!
//! // Offline bound.
//! let flack = Flack::new().run(&train, &cfg.uop_cache);
//! assert!(flack.stats.uops_hit > 0);
//!
//! // Practical policy, profiled on the same trace.
//! let pipeline = FurbysPipeline::new(cfg);
//! let profile = pipeline.profile(&train);
//! let result = pipeline.deploy_and_run(&profile, &train);
//! assert!(result.uopc.uops_hit > 0);
//! ```

pub mod flack;
pub mod furbys;
pub mod hints;
pub mod jenks;
pub mod phased;
pub mod pipeline;
pub mod weights;

pub use flack::{Flack, FlackOutcome};
pub use furbys::FurbysPolicy;
pub use hints::HintMap;
pub use phased::{PhasedFurbysPolicy, PhasedProfile};
pub use pipeline::{FurbysPipeline, OracleKind, Profile};
pub use weights::{compute_weights, WeightConfig};
