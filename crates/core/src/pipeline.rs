//! The 7-step FURBYS deployment pipeline (paper Fig. 6).
//!
//! 1. collect the execution trace (Intel PT in the paper; the synthetic
//!    generator in `uopcache-trace` here);
//! 2. record the PW lookup sequence (replacement-independent — our
//!    [`uopcache_model::LookupTrace`] *is* that sequence);
//! 3. compute FLACK's near-optimal decisions;
//! 4. replay them through the micro-op cache model at micro-op granularity;
//! 5. collect per-PW hit/miss observations;
//! 6. group hit rates into weight classes with Jenks natural breaks and
//!    inject them as binary hints;
//! 7. deploy: run the online FURBYS policy in the timed frontend simulator.

use crate::flack::Flack;
use crate::furbys::FurbysPolicy;
use crate::hints::HintMap;
use crate::weights::{compute_weights, WeightConfig};
use uopcache_cache::UopCache;
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, FrontendConfig, LookupTrace, SimResult};
use uopcache_offline::BeladyPolicy;
use uopcache_policies::profile::hit_rates_from_observations;
use uopcache_sim::Frontend;

/// Which offline oracle produces the profile (the Fig. 15 study).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum OracleKind {
    /// FLACK (the paper's choice — ~3 % better than the alternatives).
    #[default]
    Flack,
    /// Belady's algorithm.
    Belady,
    /// Raw FOO.
    Foo,
}

impl OracleKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::Flack => "FLACK",
            OracleKind::Belady => "Belady",
            OracleKind::Foo => "FOO",
        }
    }
}

/// A computed profile: hit rates and the hints derived from them.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Per-start micro-op-weighted hit rates under the oracle's decisions.
    pub hit_rates: FastHashMap<Addr, f64>,
    /// The weight groups injected into the binary.
    pub hints: HintMap,
}

/// End-to-end FURBYS pipeline configuration.
///
/// # Examples
///
/// ```
/// use uopcache_core::FurbysPipeline;
/// use uopcache_model::FrontendConfig;
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let pipeline = FurbysPipeline::new(FrontendConfig::zen3());
/// let train = build_trace(AppId::Kafka, InputVariant::new(0), 6_000);
/// let test = build_trace(AppId::Kafka, InputVariant::new(1), 6_000);
/// let profile = pipeline.profile(&train);
/// // Cross-input deployment (the Fig. 18 scenario).
/// let result = pipeline.deploy_and_run(&profile, &test);
/// assert!(result.uopc.lookups == 6_000);
/// ```
#[derive(Clone, Debug)]
pub struct FurbysPipeline {
    /// Frontend configuration for both profiling geometry and deployment.
    pub frontend_cfg: FrontendConfig,
    /// Weight grouping (bits, per-set).
    pub weight_cfg: WeightConfig,
    /// Bypass margin K.
    pub bypass_k: u8,
    /// Pitfall detector depth.
    pub detector_depth: usize,
    /// Profile source.
    pub oracle: OracleKind,
}

impl FurbysPipeline {
    /// The paper's configuration: FLACK oracle, 3-bit per-set Jenks weights,
    /// K = 1, detector depth 2.
    pub fn new(frontend_cfg: FrontendConfig) -> Self {
        FurbysPipeline {
            frontend_cfg,
            weight_cfg: WeightConfig::default(),
            bypass_k: 1,
            detector_depth: 2,
            oracle: OracleKind::Flack,
        }
    }

    /// Steps 2-6: profiles a training trace into hit rates and hints.
    pub fn profile(&self, trace: &LookupTrace) -> Profile {
        self.profile_merged(std::slice::from_ref(trace))
    }

    /// As [`FurbysPipeline::profile`] over several training traces, merging
    /// the observations (the cross-validation setup of Fig. 18 profiles a
    /// training set of inputs and deploys on held-out ones).
    pub fn profile_merged(&self, traces: &[LookupTrace]) -> Profile {
        let mut all_obs: Vec<(Addr, u32, u32)> = Vec::new();
        for trace in traces {
            all_obs.extend(self.observations(trace));
        }
        let hit_rates = hit_rates_from_observations(all_obs);
        let hints = compute_weights(&hit_rates, &self.frontend_cfg.uop_cache, &self.weight_cfg);
        Profile { hit_rates, hints }
    }

    /// The raw per-access oracle observations (`(start, hit_uops,
    /// total_uops)` in trace order) — the input to both the standard and the
    /// phase-aware ([`crate::PhasedProfile`]) weight computations.
    pub fn oracle_observations(&self, trace: &LookupTrace) -> Vec<(Addr, u32, u32)> {
        self.observations(trace)
    }

    fn observations(&self, trace: &LookupTrace) -> Vec<(Addr, u32, u32)> {
        let cfg = &self.frontend_cfg.uop_cache;
        match self.oracle {
            OracleKind::Flack => {
                let flack = Flack::new();
                let sol = uopcache_offline::foo::solve(trace, cfg, &flack.foo_config());
                uopcache_offline::replay::replay_observed(trace, cfg, &sol, flack.timing()).1
            }
            OracleKind::Foo => {
                let raw_foo = Flack::ablation(false, false, false);
                let sol = uopcache_offline::foo::solve(trace, cfg, &raw_foo.foo_config());
                uopcache_offline::replay::replay_observed(trace, cfg, &sol, raw_foo.timing()).1
            }
            OracleKind::Belady => {
                let mut cache = UopCache::new(*cfg, Box::new(BeladyPolicy::from_trace(trace)));
                uopcache_policies::run_trace_observed(&mut cache, trace).1
            }
        }
    }

    /// Step 7: builds the online policy from a profile.
    pub fn policy(&self, profile: &Profile) -> FurbysPolicy {
        FurbysPolicy::with_params(profile.hints.clone(), self.bypass_k, self.detector_depth)
    }

    /// Step 7, end to end: deploys the profile and runs `trace` through the
    /// timed frontend simulator.
    pub fn deploy_and_run(&self, profile: &Profile, trace: &LookupTrace) -> SimResult {
        let mut frontend = Frontend::builder(self.frontend_cfg)
            .policy(self.policy(profile))
            .build();
        frontend.run(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_cache::LruPolicy;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    fn lru_run(cfg: FrontendConfig, trace: &LookupTrace) -> SimResult {
        Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(trace)
    }

    #[test]
    fn furbys_beats_lru_on_same_input() {
        let cfg = FrontendConfig::zen3();
        let trace = build_trace(AppId::Kafka, InputVariant(0), 25_000);
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        let furbys = pipeline.deploy_and_run(&profile, &trace);
        let lru = lru_run(cfg, &trace);
        let reduction = furbys.uopc.miss_reduction_vs(&lru.uopc);
        assert!(
            reduction > 3.0,
            "FURBYS miss reduction only {reduction:.2}%"
        );
    }

    #[test]
    fn cross_input_profile_retains_most_of_the_benefit() {
        let cfg = FrontendConfig::zen3();
        let train = build_trace(AppId::Python, InputVariant(0), 25_000);
        let test = build_trace(AppId::Python, InputVariant(1), 25_000);
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&train);
        let cross = pipeline.deploy_and_run(&profile, &test);
        let lru = lru_run(cfg, &test);
        let reduction = cross.uopc.miss_reduction_vs(&lru.uopc);
        assert!(reduction > 0.0, "cross-input reduction {reduction:.2}%");
    }

    #[test]
    fn oracle_choices_all_work() {
        let cfg = FrontendConfig::zen3();
        let trace = build_trace(AppId::Postgres, InputVariant(0), 8_000);
        for oracle in [OracleKind::Flack, OracleKind::Belady, OracleKind::Foo] {
            let mut p = FurbysPipeline::new(cfg);
            p.oracle = oracle;
            let profile = p.profile(&trace);
            assert!(!profile.hints.is_empty(), "{}", oracle.label());
            let r = p.deploy_and_run(&profile, &trace);
            assert_eq!(r.uopc.lookups, 8_000);
        }
    }

    #[test]
    fn merged_profiles_cover_more_code() {
        let cfg = FrontendConfig::zen3();
        let t0 = build_trace(AppId::Tomcat, InputVariant(0), 6_000);
        let t1 = build_trace(AppId::Tomcat, InputVariant(1), 6_000);
        let pipeline = FurbysPipeline::new(cfg);
        let single = pipeline.profile(&t0);
        let merged = pipeline.profile_merged(&[t0.clone(), t1]);
        assert!(merged.hints.len() >= single.hints.len());
    }

    #[test]
    fn coverage_stat_reports_fallback_share() {
        let cfg = FrontendConfig::zen3();
        let trace = build_trace(AppId::Finagle, InputVariant(0), 20_000);
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        let r = pipeline.deploy_and_run(&profile, &trace);
        let coverage = r.uopc.replacement_coverage();
        // FURBYS should make the large majority of victim selections itself.
        assert!(coverage > 0.5, "coverage {coverage}");
    }
}
