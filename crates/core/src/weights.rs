//! Weight-group computation: Jenks natural breaks over profiled hit rates.

use crate::hints::HintMap;
use crate::jenks::{classify, jenks_breaks};
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, UopCacheConfig};

/// How hit rates are grouped into weights.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct WeightConfig {
    /// Hint width in bits (paper: 3 → 8 groups, the Fig. 19 sweep varies
    /// this from 1 to 8).
    pub bits: u8,
    /// Compute breaks per cache set (the paper's choice, since replacement
    /// decisions are per set) instead of globally.
    pub per_set: bool,
}

impl Default for WeightConfig {
    fn default() -> Self {
        WeightConfig {
            bits: 3,
            per_set: true,
        }
    }
}

/// Groups `hit_rates` into `2^bits` weight classes with Jenks natural breaks
/// and returns the resulting hint map (weight 0 = lowest hit rate).
///
/// # Examples
///
/// ```
/// use uopcache_model::hash::FastHashMap;
/// use uopcache_core::{compute_weights, WeightConfig};
/// use uopcache_model::{Addr, UopCacheConfig};
///
/// let mut rates = FastHashMap::default();
/// // 0x0000 and 0x1000 map to the same set of the 64-set Zen3 cache.
/// rates.insert(Addr::new(0x0000), 0.05);
/// rates.insert(Addr::new(0x1000), 0.95);
/// let hints = compute_weights(&rates, &UopCacheConfig::zen3(), &WeightConfig::default());
/// assert!(hints.get(Addr::new(0x1000)) > hints.get(Addr::new(0x0000)));
/// ```
pub fn compute_weights(
    hit_rates: &FastHashMap<Addr, f64>,
    cfg: &UopCacheConfig,
    wcfg: &WeightConfig,
) -> HintMap {
    let classes = 1usize << wcfg.bits;
    let mut hints = HintMap::new(wcfg.bits);
    if hit_rates.is_empty() {
        return hints;
    }
    if wcfg.per_set {
        let mut per_set: FastHashMap<usize, Vec<(Addr, f64)>> = FastHashMap::default();
        for (&a, &r) in hit_rates {
            per_set
                .entry(cfg.set_index_for(a, 64))
                .or_default()
                .push((a, r));
        }
        for group in per_set.values() {
            assign(group, classes, &mut hints);
        }
    } else {
        let group: Vec<(Addr, f64)> = hit_rates.iter().map(|(&a, &r)| (a, r)).collect();
        assign(&group, classes, &mut hints);
    }
    hints
}

fn assign(group: &[(Addr, f64)], classes: usize, hints: &mut HintMap) {
    let values: Vec<f64> = group.iter().map(|&(_, r)| r).collect();
    let breaks = jenks_breaks(&values, classes);
    for &(a, r) in group {
        hints.set(
            a,
            u8::try_from(classify(r, &breaks)).expect("at most 8 weight classes"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> UopCacheConfig {
        UopCacheConfig::zen3()
    }

    #[test]
    fn weights_are_monotone_in_hit_rate_within_a_set() {
        // Addresses 0x000, 0x1000, 0x2000... spaced by sets*64 = 4096 bytes
        // map to the same set.
        let mut rates = FastHashMap::default();
        let addrs: Vec<Addr> = (0..8u64).map(|i| Addr::new(i * 4096)).collect();
        for (i, &a) in addrs.iter().enumerate() {
            rates.insert(a, i as f64 / 7.0);
        }
        let hints = compute_weights(&rates, &cfg(), &WeightConfig::default());
        for w in addrs.windows(2) {
            assert!(hints.get(w[0]) <= hints.get(w[1]));
        }
        assert_eq!(hints.get(addrs[0]), 0);
        assert_eq!(hints.get(addrs[7]), 7);
    }

    #[test]
    fn fewer_bits_coarsen_groups() {
        let mut rates = FastHashMap::default();
        for i in 0..16u64 {
            rates.insert(Addr::new(i * 4096), i as f64 / 15.0);
        }
        let fine = compute_weights(
            &rates,
            &cfg(),
            &WeightConfig {
                bits: 3,
                per_set: true,
            },
        );
        let coarse = compute_weights(
            &rates,
            &cfg(),
            &WeightConfig {
                bits: 1,
                per_set: true,
            },
        );
        let fine_distinct: uopcache_model::hash::FastHashSet<u8> =
            rates.keys().map(|&a| fine.get(a)).collect();
        let coarse_distinct: uopcache_model::hash::FastHashSet<u8> =
            rates.keys().map(|&a| coarse.get(a)).collect();
        assert!(coarse_distinct.len() <= 2);
        assert!(fine_distinct.len() > coarse_distinct.len());
    }

    #[test]
    fn global_mode_spans_sets() {
        let mut rates = FastHashMap::default();
        rates.insert(Addr::new(0), 0.1);
        rates.insert(Addr::new(64), 0.9); // different set
        let hints = compute_weights(
            &rates,
            &cfg(),
            &WeightConfig {
                bits: 3,
                per_set: false,
            },
        );
        assert!(hints.get(Addr::new(64)) > hints.get(Addr::new(0)));
    }

    #[test]
    fn empty_rates_yield_empty_hints() {
        let hints = compute_weights(&FastHashMap::default(), &cfg(), &WeightConfig::default());
        assert!(hints.is_empty());
    }
}
