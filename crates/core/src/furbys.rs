//! FURBYS: FLACK-based groUping-by-hit-Rate BYpassing-coldness
//! detecting-miSses — the practical online replacement policy.

use crate::hints::HintMap;
use std::collections::VecDeque;
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::{Addr, PwDesc};
use uopcache_policies::SlotTable;

const RRPV_MAX: u8 = 3;
const RRPV_INSERT: u8 = 2;

/// The FURBYS replacement policy (§V).
///
/// Hardware state per the paper's Fig. 7: 3 weight bits and 2 SRRIP RRPV bits
/// per entry, plus a two-slot *local miss-pitfall detector* per set recording
/// recently evicted ways. Decisions:
///
/// * **victim**: the resident PW with the minimum profiled weight (LRU breaks
///   ties); if that way was evicted recently (detector hit), the decision is
///   delegated to SRRIP for one round — evicting globally-hot but locally
///   cold PWs — then control returns to FURBYS;
/// * **bypass**: an incoming PW whose weight is below the set's minimum
///   resident weight minus `K` (default 1) is not inserted, saving insertion
///   energy and avoiding pollution.
///
/// # Examples
///
/// ```
/// use uopcache_core::{FurbysPolicy, HintMap};
/// use uopcache_cache::UopCache;
/// use uopcache_model::{Addr, UopCacheConfig};
///
/// let mut hints = HintMap::new(3);
/// hints.set(Addr::new(0x100), 7);
/// let cache = UopCache::new(
///     UopCacheConfig::zen3(),
///     Box::new(FurbysPolicy::new(hints)),
/// );
/// assert_eq!(cache.policy_name(), "FURBYS");
/// ```
#[derive(Clone, Debug)]
pub struct FurbysPolicy {
    hints: HintMap,
    /// Bypass margin K (paper: K = 1).
    k: u8,
    /// Pitfall-detector depth (paper: 2).
    detector_depth: usize,
    /// SRRIP metadata, maintained alongside the weights.
    rrpv: SlotTable<u8>,
    /// Per-set recently evicted windows (their start-address tags). The
    /// detector fires when the would-be victim is a window that was itself
    /// evicted recently — the `{A, I}^n` thrash of §V — not merely a reused
    /// way slot, which under capacity pressure is the common, benign case.
    recent_evicted: Vec<VecDeque<Addr>>,
    last_fallback: bool,
}

impl FurbysPolicy {
    /// Creates the policy with the paper's hyper-parameters (K = 1,
    /// detector depth 2).
    pub fn new(hints: HintMap) -> Self {
        Self::with_params(hints, 1, 2)
    }

    /// Creates the policy with explicit hyper-parameters (for the Fig. 20/21
    /// sensitivity studies). `detector_depth == 0` disables the pitfall
    /// detector; `k == u8::MAX` disables bypassing.
    pub fn with_params(hints: HintMap, k: u8, detector_depth: usize) -> Self {
        FurbysPolicy {
            hints,
            k,
            detector_depth,
            rrpv: SlotTable::new(),
            recent_evicted: Vec::new(),
            last_fallback: false,
        }
    }

    /// The profiled weight of a start address (unprofiled PWs weigh 0).
    pub fn weight_of(&self, start: Addr) -> u8 {
        self.hints.get(start)
    }

    /// Swaps the weight table, preserving all replacement metadata (SRRIP
    /// bits, pitfall detector). Used by the phase-aware extension.
    pub fn replace_hints(&mut self, hints: HintMap) {
        self.hints = hints;
    }

    fn detector(&mut self, set: usize) -> &mut VecDeque<Addr> {
        if self.recent_evicted.len() <= set {
            self.recent_evicted.resize_with(set + 1, VecDeque::new); // audit:allow(hot-path-alloc) — lazy per-set init; steady-state after every set is touched once
        }
        &mut self.recent_evicted[set]
    }

    fn record_eviction(&mut self, set: usize, start: Addr) {
        let depth = self.detector_depth;
        if depth == 0 {
            return;
        }
        let d = self.detector(set);
        d.push_back(start); // audit:allow(hot-path-alloc) — ring bounded at detector_depth; capacity warms to the bound and stays
        while d.len() > depth {
            d.pop_front();
        }
    }

    fn srrip_select(&mut self, set: usize, resident: &[PwMeta]) -> usize {
        let max = resident
            .iter()
            .map(|m| *self.rrpv.get(set, m.slot))
            .max()
            .expect("resident slice is non-empty");
        let age = RRPV_MAX.saturating_sub(max);
        if age > 0 {
            for m in resident {
                let v = self.rrpv.get_mut(set, m.slot);
                *v = (*v + age).min(RRPV_MAX);
            }
        }
        resident
            .iter()
            .position(|m| *self.rrpv.get(set, m.slot) == RRPV_MAX)
            .expect("aging guarantees a victim")
    }
}

impl PwReplacementPolicy for FurbysPolicy {
    fn name(&self) -> &'static str {
        "FURBYS"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.rrpv.reserve(sets, ways);
        if self.recent_evicted.len() < sets {
            self.recent_evicted.resize_with(sets, VecDeque::new);
        }
        for d in &mut self.recent_evicted {
            d.reserve(self.detector_depth);
        }
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        *self.rrpv.get_mut(set, meta.slot) = 0;
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        *self.rrpv.get_mut(set, meta.slot) = RRPV_INSERT;
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        *self.rrpv.get_mut(set, meta.slot) = 0;
    }

    fn should_bypass(
        &mut self,
        _set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        if self.k == u8::MAX || needed_entries <= free_entries || resident.is_empty() {
            return false;
        }
        let min_resident = resident
            .iter()
            .map(|m| self.weight_of(m.desc.start))
            .min()
            .expect("resident slice is non-empty");
        // Bypass if weight(incoming) < min(resident) - K.
        u32::from(self.weight_of(incoming.start)) + u32::from(self.k) < u32::from(min_resident)
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // FURBYS pick: minimum weight, LRU tiebreak.
        let furbys_idx = resident
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (self.weight_of(m.desc.start), m.last_access))
            .map(|(i, _)| i)
            .expect("resident slice is non-empty");
        let furbys_start = resident[furbys_idx].desc.start;
        let pitfall = self.detector_depth > 0
            && self
                .recent_evicted
                .get(set)
                .is_some_and(|d| d.contains(&furbys_start));
        let chosen = if pitfall {
            // The same window is being evicted repeatedly while still being
            // re-fetched: a locally-hot PW whose global weight undersells it.
            // Delegate one decision to SRRIP, which protects recently-hit
            // windows regardless of profile.
            self.last_fallback = true;
            self.srrip_select(set, resident)
        } else {
            self.last_fallback = false;
            furbys_idx
        };
        self.record_eviction(set, resident[chosen].desc.start);
        chosen
    }

    fn last_selection_was_fallback(&self) -> bool {
        self.last_fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn meta(slot: u8, start: u64, last_access: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits: 0,
        }
    }

    fn hints(pairs: &[(u64, u8)]) -> HintMap {
        let mut h = HintMap::new(3);
        for &(a, w) in pairs {
            h.set(Addr::new(a), w);
        }
        h
    }

    fn incoming(start: u64) -> PwDesc {
        PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn evicts_minimum_weight() {
        let mut p = FurbysPolicy::new(hints(&[(0x100, 7), (0x200, 2), (0x300, 5)]));
        let resident = [meta(0, 0x100, 1), meta(1, 0x200, 9), meta(2, 0x300, 5)];
        assert_eq!(p.choose_victim(0, &incoming(0x900), &resident), 1);
        assert!(!p.last_selection_was_fallback());
    }

    #[test]
    fn lru_breaks_weight_ties() {
        let mut p = FurbysPolicy::new(hints(&[(0x100, 2), (0x200, 2)]));
        let resident = [meta(0, 0x100, 9), meta(1, 0x200, 3)];
        assert_eq!(p.choose_victim(0, &incoming(0x900), &resident), 1);
    }

    #[test]
    fn bypass_below_min_minus_k() {
        let mut p = FurbysPolicy::new(hints(&[(0x100, 5), (0x200, 4), (0x900, 2)]));
        let resident = [meta(0, 0x100, 1), meta(1, 0x200, 2)];
        // weight 2 < min 4 - K 1 => bypass (2 + 1 < 4).
        assert!(p.should_bypass(0, &incoming(0x900), 1, 0, &resident));
        // weight 3 (unprofiled would be 0): with weight exactly min-K, insert.
        let mut p2 = FurbysPolicy::new(hints(&[(0x100, 5), (0x200, 4), (0x900, 3)]));
        assert!(!p2.should_bypass(0, &incoming(0x900), 1, 0, &resident));
        // Free space: never bypass.
        assert!(!p.should_bypass(0, &incoming(0x900), 1, 2, &resident));
    }

    #[test]
    fn disabled_bypass_with_k_max() {
        let mut p = FurbysPolicy::with_params(hints(&[(0x100, 7)]), u8::MAX, 2);
        let resident = [meta(0, 0x100, 1)];
        assert!(!p.should_bypass(0, &incoming(0x900), 1, 0, &resident));
    }

    #[test]
    fn pitfall_detector_degrades_to_srrip_once() {
        let mut p = FurbysPolicy::new(hints(&[(0x100, 0), (0x200, 7), (0x300, 7)]));
        let a = meta(0, 0x100, 5);
        let b = meta(1, 0x200, 1);
        let c = meta(2, 0x300, 2);
        // Maintain SRRIP state: b and c inserted long ago, b was hit.
        p.on_insert(0, &b);
        p.on_insert(0, &c);
        p.on_hit(0, &b); // b: rrpv 0, c: rrpv 2
        p.on_insert(0, &a);

        // First eviction: weight-0 PW in slot 0.
        assert_eq!(p.choose_victim(0, &incoming(0x900), &[a, b, c]), 0);
        assert!(!p.last_selection_was_fallback());
        p.on_evict(0, &a);

        // The same PW returns to slot 0, gets hit (the `{A, I}^n` pattern of
        // §V: it is locally hot), and would be chosen again: the detector
        // fires and SRRIP picks instead — protecting the just-hit PW and
        // evicting the distant-RRPV resident c.
        p.on_insert(0, &a);
        p.on_hit(0, &a);
        let v = p.choose_victim(0, &incoming(0x900), &[a, b, c]);
        assert!(p.last_selection_was_fallback());
        assert_eq!(v, 2, "SRRIP evicts the distant-RRPV resident");
    }

    #[test]
    fn detector_depth_zero_disables_fallback() {
        let mut p = FurbysPolicy::with_params(hints(&[(0x100, 0), (0x200, 7)]), 1, 0);
        let a = meta(0, 0x100, 5);
        let b = meta(1, 0x200, 1);
        for _ in 0..3 {
            assert_eq!(p.choose_victim(0, &incoming(0x900), &[a, b]), 0);
            assert!(!p.last_selection_was_fallback());
        }
    }

    #[test]
    fn unprofiled_pws_weigh_zero() {
        let p = FurbysPolicy::new(hints(&[]));
        assert_eq!(p.weight_of(Addr::new(0xdead)), 0);
    }
}
