//! Jenks natural breaks: optimal 1-D classification minimising within-class
//! variance (Jenks, 1967) — used to group PW hit rates into weight classes.

/// Computes Jenks natural breaks for `values` into at most `classes` groups.
///
/// Returns the *upper bounds* of each class in ascending order (the last
/// bound is the maximum value); classify with [`classify`]. When there are
/// fewer distinct values than classes, each distinct value gets its own
/// class and fewer bounds are returned.
///
/// Runs the exact O(classes · n²) dynamic program on the sorted distinct
/// values; hit-rate profiles are computed per cache set, keeping `n` small.
///
/// # Panics
///
/// Panics if `classes` is zero or any value is NaN.
///
/// # Examples
///
/// ```
/// use uopcache_core::jenks::{classify, jenks_breaks};
///
/// let values = [0.0, 0.1, 0.05, 0.9, 0.95, 1.0];
/// let breaks = jenks_breaks(&values, 2);
/// assert_eq!(breaks.len(), 2);
/// // The natural split separates the low cluster from the high one.
/// assert_eq!(classify(0.05, &breaks), 0);
/// assert_eq!(classify(0.95, &breaks), 1);
/// ```
pub fn jenks_breaks(values: &[f64], classes: usize) -> Vec<f64> {
    assert!(classes > 0, "need at least one class");
    assert!(values.iter().all(|v| !v.is_nan()), "values must not be NaN");
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    sorted.dedup();
    let n = sorted.len();
    let k = classes.min(n);
    if k == n {
        return sorted;
    }

    // Prefix sums for O(1) within-class sum of squared deviations.
    let mut prefix = vec![0.0; n + 1];
    let mut prefix_sq = vec![0.0; n + 1];
    #[allow(clippy::needless_range_loop)]
    for (i, &v) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    let ssd = |lo: usize, hi: usize| -> f64 {
        // Sum of squared deviations of sorted[lo..=hi].
        let m = (hi - lo + 1) as f64;
        let s = prefix[hi + 1] - prefix[lo];
        let sq = prefix_sq[hi + 1] - prefix_sq[lo];
        sq - s * s / m
    };

    // dp[c][i] = minimal total SSD splitting sorted[0..=i] into c+1 classes.
    let mut dp = vec![vec![f64::INFINITY; n]; k];
    let mut cut = vec![vec![0usize; n]; k];
    for (i, cell) in dp[0].iter_mut().enumerate() {
        *cell = ssd(0, i);
    }
    for c in 1..k {
        for i in c..n {
            for j in c..=i {
                let cand = dp[c - 1][j - 1] + ssd(j, i);
                if cand < dp[c][i] {
                    dp[c][i] = cand;
                    cut[c][i] = j;
                }
            }
        }
    }

    // Recover the class upper bounds.
    let mut bounds = vec![0.0; k];
    let mut end = n - 1;
    for c in (0..k).rev() {
        bounds[c] = sorted[end];
        if c > 0 {
            end = cut[c][end] - 1;
        }
    }
    bounds
}

/// Returns the class index (0-based, ascending) of `value` under `breaks`
/// from [`jenks_breaks`]. Values above the last bound land in the top class.
pub fn classify(value: f64, breaks: &[f64]) -> usize {
    for (i, &b) in breaks.iter().enumerate() {
        if value <= b {
            return i;
        }
    }
    breaks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_two_obvious_clusters() {
        let v = [1.0, 1.1, 1.2, 9.0, 9.1, 9.2];
        let breaks = jenks_breaks(&v, 2);
        assert_eq!(breaks, vec![1.2, 9.2]);
        assert_eq!(classify(1.15, &breaks), 0);
        assert_eq!(classify(9.0, &breaks), 1);
    }

    #[test]
    fn three_clusters() {
        let v = [0.0, 0.01, 0.5, 0.52, 0.99, 1.0];
        let breaks = jenks_breaks(&v, 3);
        assert_eq!(breaks.len(), 3);
        assert_eq!(classify(0.0, &breaks), 0);
        assert_eq!(classify(0.51, &breaks), 1);
        assert_eq!(classify(1.0, &breaks), 2);
    }

    #[test]
    fn fewer_distinct_values_than_classes() {
        let v = [0.5, 0.5, 0.7];
        let breaks = jenks_breaks(&v, 8);
        assert_eq!(breaks, vec![0.5, 0.7]);
    }

    #[test]
    fn single_class_covers_everything() {
        let v = [3.0, 1.0, 2.0];
        let breaks = jenks_breaks(&v, 1);
        assert_eq!(breaks, vec![3.0]);
        assert_eq!(classify(2.5, &breaks), 0);
    }

    #[test]
    fn empty_input() {
        assert!(jenks_breaks(&[], 4).is_empty());
    }

    #[test]
    fn dp_beats_equal_width_on_skewed_data() {
        // Cluster structure: {0..0.1} x 10, {5.0}: Jenks puts the lone
        // outlier in its own class rather than splitting the dense cluster.
        let mut v: Vec<f64> = (0..10).map(|i| i as f64 * 0.01).collect();
        v.push(5.0);
        let breaks = jenks_breaks(&v, 2);
        assert!(breaks[0] < 1.0 && (breaks[1] - 5.0).abs() < 1e-12);
        assert_eq!(classify(5.0, &breaks), 1);
        assert_eq!(classify(0.09, &breaks), 0);
    }

    #[test]
    fn classify_above_all_breaks_is_top_class() {
        let breaks = vec![0.5, 1.0];
        assert_eq!(classify(2.0, &breaks), 1);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = jenks_breaks(&[1.0], 0);
    }
}
