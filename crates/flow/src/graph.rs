//! Residual flow network and the successive-shortest-path solver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle to an edge added with [`FlowGraph::add_edge`], used to read back the
/// flow routed through it after solving.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct EdgeId(usize);

/// Outcome of a min-cost-flow computation.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct McmfResult {
    /// Units of flow actually routed (may be less than requested if the
    /// network saturates first).
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: i64,
}

#[derive(Clone, Debug)]
struct Edge {
    to: u32,
    cap: i64,
    cost: i64,
}

/// A directed flow network with costs.
///
/// Edges are stored with their residual twins; `add_edge(u, v, cap, cost)`
/// creates the forward edge and a zero-capacity reverse edge with negated
/// cost.
///
/// # Examples
///
/// ```
/// use uopcache_flow::FlowGraph;
///
/// let mut g = FlowGraph::new(2);
/// let e = g.add_edge(0, 1, 10, -3); // negative costs are allowed
/// let r = g.min_cost_flow(0, 1, 10);
/// assert_eq!((r.flow, r.cost), (10, -30));
/// assert_eq!(g.flow_on(e), 10);
/// ```
#[derive(Clone, Debug)]
pub struct FlowGraph {
    edges: Vec<Edge>,
    /// Adjacency list: per-node indices into `edges`.
    adj: Vec<Vec<u32>>,
    /// Whether every added edge goes from a lower to a higher node index
    /// (lets the solver seed potentials with one topological pass).
    is_forward_dag: bool,
}

impl FlowGraph {
    /// Creates a network with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        FlowGraph {
            edges: Vec::new(),
            adj: vec![Vec::new(); nodes],
            is_forward_dag: true,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Clears all edges and resizes the network to `nodes` nodes, retaining
    /// the edge and adjacency allocations, so a solver loop building one
    /// network per problem instance (e.g. FOO's per-set solves) can reuse a
    /// single graph instead of reallocating each time.
    pub fn reset(&mut self, nodes: usize) {
        self.edges.clear();
        for row in &mut self.adj {
            row.clear();
        }
        self.adj.resize_with(nodes, Vec::new);
        self.is_forward_dag = true;
    }

    /// Number of (forward) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge with the given capacity and per-unit cost and
    /// returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `from == to`, or if
    /// `cap` is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "edge endpoint out of range"
        );
        assert!(from != to, "self-loops are not supported");
        assert!(cap >= 0, "capacity must be non-negative");
        if from >= to {
            self.is_forward_dag = false;
        }
        let id = self.edges.len();
        self.edges.push(Edge {
            to: to as u32,
            cap,
            cost,
        });
        self.edges.push(Edge {
            to: from as u32,
            cap: 0,
            cost: -cost,
        });
        self.adj[from].push(id as u32);
        self.adj[to].push(id as u32 + 1);
        EdgeId(id)
    }

    /// Flow currently routed through the edge (the residual capacity of its
    /// reverse twin). Valid after [`FlowGraph::min_cost_flow`].
    pub fn flow_on(&self, id: EdgeId) -> i64 {
        self.edges[id.0 ^ 1].cap
    }

    /// Remaining capacity of the edge.
    pub fn residual_on(&self, id: EdgeId) -> i64 {
        self.edges[id.0].cap
    }

    /// Routes up to `max_flow` units from `source` to `sink` at minimum total
    /// cost, mutating the network's residual capacities.
    ///
    /// Negative edge costs are supported. When the network (as constructed)
    /// is a forward DAG, initial potentials come from a linear relaxation
    /// pass; otherwise Bellman–Ford is used.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn min_cost_flow(&mut self, source: usize, sink: usize, max_flow: i64) -> McmfResult {
        assert!(
            source < self.adj.len() && sink < self.adj.len(),
            "endpoint out of range"
        );
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.adj.len();
        let mut potential = if self.edges.iter().all(|e| e.cost >= 0) {
            vec![0i64; n]
        } else if self.is_forward_dag {
            self.dag_potentials(source)
        } else {
            self.bellman_ford_potentials(source)
        };

        let mut total = McmfResult::default();
        let mut dist = vec![i64::MAX; n];
        let mut par_edge = vec![u32::MAX; n];

        while total.flow < max_flow {
            // Dijkstra on reduced costs.
            dist.fill(i64::MAX);
            par_edge.fill(u32::MAX);
            dist[source] = 0;
            let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
            heap.push(Reverse((0, source as u32)));
            while let Some(Reverse((d, u))) = heap.pop() {
                let u = u as usize;
                if d > dist[u] {
                    continue;
                }
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap <= 0 {
                        continue;
                    }
                    let v = e.to as usize;
                    if potential[u] == i64::MAX || potential[v] == i64::MAX {
                        continue;
                    }
                    let nd = d + e.cost + potential[u] - potential[v];
                    debug_assert!(
                        e.cost + potential[u] - potential[v] >= 0,
                        "reduced cost must be non-negative"
                    );
                    if nd < dist[v] {
                        dist[v] = nd;
                        par_edge[v] = eid;
                        heap.push(Reverse((nd, v as u32)));
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break; // saturated
            }
            for v in 0..n {
                if dist[v] != i64::MAX {
                    potential[v] = potential[v].saturating_add(dist[v]);
                }
            }
            // Find bottleneck along the shortest path.
            let mut push = max_flow - total.flow;
            let mut v = sink;
            while v != source {
                let eid = par_edge[v] as usize;
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to as usize;
            }
            // Apply.
            let mut v = sink;
            let mut path_cost = 0;
            while v != source {
                let eid = par_edge[v] as usize;
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                path_cost += self.edges[eid].cost;
                v = self.edges[eid ^ 1].to as usize;
            }
            total.flow += push;
            total.cost += push * path_cost;
        }
        total
    }

    /// Shortest distances from `source` via one pass in node order — exact for
    /// forward DAGs (every edge goes from a lower to a higher index).
    fn dag_potentials(&self, source: usize) -> Vec<i64> {
        let n = self.adj.len();
        let mut dist = vec![i64::MAX; n];
        dist[source] = 0;
        for u in 0..n {
            if dist[u] == i64::MAX {
                continue;
            }
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                if e.cap <= 0 {
                    continue;
                }
                let v = e.to as usize;
                // Residual twins point backwards; skip them (they have no
                // capacity before any flow is routed anyway).
                if v <= u {
                    continue;
                }
                let nd = dist[u] + e.cost;
                if nd < dist[v] {
                    dist[v] = nd;
                }
            }
        }
        // Unreachable nodes keep MAX; Dijkstra skips them via the potential
        // check.
        dist
    }

    /// Bellman–Ford (queue-based) potentials for general graphs with negative
    /// costs.
    fn bellman_ford_potentials(&self, source: usize) -> Vec<i64> {
        let n = self.adj.len();
        let mut dist = vec![i64::MAX; n];
        let mut in_queue = vec![false; n];
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        in_queue[source] = true;
        let mut relaxations = 0usize;
        let budget = n.saturating_mul(self.edges.len()).max(1);
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            for &eid in &self.adj[u] {
                let e = &self.edges[eid as usize];
                if e.cap <= 0 || dist[u] == i64::MAX {
                    continue;
                }
                let v = e.to as usize;
                let nd = dist[u] + e.cost;
                if nd < dist[v] {
                    dist[v] = nd;
                    relaxations += 1;
                    assert!(relaxations <= budget, "negative cycle detected");
                    if !in_queue[v] {
                        queue.push_back(v);
                        in_queue[v] = true;
                    }
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reuses_the_graph_for_a_fresh_solve() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 4, 7);
        g.min_cost_flow(0, 1, 10);

        // Shrink, re-grow, and solve an unrelated instance: results must
        // match a freshly constructed graph.
        g.reset(1);
        assert_eq!(g.node_count(), 1);
        g.reset(3);
        assert_eq!((g.node_count(), g.edge_count()), (3, 0));
        let e = g.add_edge(0, 1, 5, -2);
        g.add_edge(1, 2, 5, 0);
        let r = g.min_cost_flow(0, 2, 5);
        assert_eq!(r, McmfResult { flow: 5, cost: -10 });
        assert_eq!(g.flow_on(e), 5);
    }

    #[test]
    fn single_edge() {
        let mut g = FlowGraph::new(2);
        let e = g.add_edge(0, 1, 4, 7);
        let r = g.min_cost_flow(0, 1, 10);
        assert_eq!(r, McmfResult { flow: 4, cost: 28 });
        assert_eq!(g.flow_on(e), 4);
        assert_eq!(g.residual_on(e), 0);
    }

    #[test]
    fn prefers_cheap_path() {
        let mut g = FlowGraph::new(4);
        let a = g.add_edge(0, 1, 3, 1);
        g.add_edge(1, 3, 3, 0);
        let b = g.add_edge(0, 2, 3, 5);
        g.add_edge(2, 3, 3, 0);
        let r = g.min_cost_flow(0, 3, 4);
        assert_eq!(r.flow, 4);
        assert_eq!(r.cost, 3 + 5);
        assert_eq!(g.flow_on(a), 3);
        assert_eq!(g.flow_on(b), 1);
    }

    #[test]
    fn negative_costs_on_dag() {
        // Taking the negative edge is cheaper even though it is longer.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 3, 1, 0);
        let neg = g.add_edge(0, 1, 1, -5);
        g.add_edge(1, 2, 1, 1);
        g.add_edge(2, 3, 1, 1);
        let r = g.min_cost_flow(0, 3, 1);
        assert_eq!(r.flow, 1);
        assert_eq!(r.cost, -3);
        assert_eq!(g.flow_on(neg), 1);
    }

    #[test]
    fn negative_costs_general_graph() {
        // Edge from high to low index forces Bellman–Ford.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 2, 2, 3);
        g.add_edge(2, 1, 2, -2);
        g.add_edge(1, 3, 2, 1);
        let r = g.min_cost_flow(0, 3, 2);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 2 * (3 - 2 + 1));
    }

    #[test]
    fn respects_max_flow_cap() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 100, 1);
        let r = g.min_cost_flow(0, 1, 7);
        assert_eq!(r.flow, 7);
        assert_eq!(r.cost, 7);
    }

    #[test]
    fn disconnected_sink_yields_zero() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 5, 1);
        let r = g.min_cost_flow(0, 2, 5);
        assert_eq!(r, McmfResult::default());
    }

    #[test]
    fn reroutes_through_residual_edges() {
        // Classic case where the second augmentation must cancel flow on the
        // first path.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(0, 2, 1, 2);
        g.add_edge(1, 2, 1, -2);
        g.add_edge(1, 3, 1, 4);
        g.add_edge(2, 3, 1, 1);
        let r = g.min_cost_flow(0, 3, 2);
        assert_eq!(r.flow, 2);
        // Optimal: 0->1->2->3 (cost 0) and 0->2? cap of 2->3 is 1... so
        // 0->1->3 (5) + 0->2->3 (3) = 8, or 0->1->2->3 (0) + 0->2..blocked ->
        // via residual: 0->2 (2), 2->... only 2->3 used; rerouted optimum:
        // 0->1->3 (5) and 0->2->3 (3) vs 0->1->2->3 (0) and 0->2->(2->3 full)
        // -> residual 2->1 (+2), 1->3 (4): total 2+2+4=8. Both give 8.
        assert_eq!(r.cost, 8);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = FlowGraph::new(2);
        g.add_edge(1, 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, -1, 0);
    }

    /// Brute-force min-cost flow by enumerating all ways to route integral
    /// flow on tiny graphs, for cross-checking.
    fn brute_force_min_cost(edges: &[(usize, usize, i64, i64)], n: usize, want: i64) -> i64 {
        // Successive shortest path via exhaustive path search (exponential,
        // tiny inputs only): here we instead compute by LP-free enumeration of
        // per-edge flows. Limit: each edge cap <= 2, few edges.
        fn rec(
            edges: &[(usize, usize, i64, i64)],
            flows: &mut Vec<i64>,
            idx: usize,
            n: usize,
            want: i64,
        ) -> Option<i64> {
            if idx == edges.len() {
                // Check conservation: net out of node 0 == want, into n-1 ==
                // want, others zero.
                let mut net = vec![0i64; n];
                for (f, &(u, v, _, _)) in flows.iter().zip(edges) {
                    net[u] += f;
                    net[v] -= f;
                }
                if net[0] == want && net[n - 1] == -want && net[1..n - 1].iter().all(|&x| x == 0) {
                    return Some(flows.iter().zip(edges).map(|(f, e)| f * e.3).sum());
                }
                return None;
            }
            let mut best = None;
            for f in 0..=edges[idx].2 {
                flows.push(f);
                if let Some(c) = rec(edges, flows, idx + 1, n, want) {
                    best = Some(best.map_or(c, |b: i64| b.min(c)));
                }
                flows.pop();
            }
            best
        }
        rec(edges, &mut Vec::new(), 0, n, want).expect("feasible")
    }

    #[test]
    fn matches_brute_force_on_random_small_graphs() {
        use uopcache_model::rng::{Prng, Rng};
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(3..5usize);
            let m = rng.gen_range(3..7);
            let mut edges = Vec::new();
            for _ in 0..m {
                let u = rng.gen_range(0..n - 1);
                let v = rng.gen_range(u + 1..n); // forward DAG
                let cap = rng.gen_range(0..=2i64);
                let cost = rng.gen_range(-3..=3i64);
                edges.push((u, v, cap, cost));
            }
            let mut g = FlowGraph::new(n);
            for &(u, v, cap, cost) in &edges {
                g.add_edge(u, v, cap, cost);
            }
            // Request 1 unit if feasible.
            let r = g.min_cost_flow(0, n - 1, 1);
            if r.flow == 1 {
                let expect = brute_force_min_cost(&edges, n, 1);
                assert_eq!(r.cost, expect, "edges: {edges:?}");
            }
        }
    }
}
