//! # uopcache-flow
//!
//! A min-cost max-flow solver used by the flow-based offline optimal (FOO)
//! replacement policy and its FLACK extension.
//!
//! The solver implements **successive shortest paths with Johnson potentials**:
//! after an initial potential computation (a single topological-order
//! relaxation when the graph is a DAG with edges from lower to higher node
//! indices — which the FOO interval network always is — or Bellman–Ford
//! otherwise), every augmentation runs Dijkstra on reduced costs.
//!
//! Costs may be negative (FOO rewards caching an interval with a negative
//! cost); capacities must be non-negative.
//!
//! # Examples
//!
//! ```
//! use uopcache_flow::FlowGraph;
//!
//! // Two parallel paths from 0 to 3 with different costs.
//! let mut g = FlowGraph::new(4);
//! let cheap = g.add_edge(0, 1, 5, 1);
//! g.add_edge(1, 3, 5, 1);
//! let pricey = g.add_edge(0, 2, 5, 4);
//! g.add_edge(2, 3, 5, 4);
//! let result = g.min_cost_flow(0, 3, 7);
//! assert_eq!(result.flow, 7);
//! assert_eq!(result.cost, 5 * 2 + 2 * 8); // 5 units cheap, 2 units pricey
//! assert_eq!(g.flow_on(cheap), 5);
//! assert_eq!(g.flow_on(pricey), 2);
//! ```

pub mod graph;

pub use graph::{EdgeId, FlowGraph, McmfResult};
