//! Quickstart: simulate a data-center workload on the Zen3-like frontend and
//! compare the LRU baseline with FURBYS, the paper's practical policy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uopcache::cache::LruPolicy;
use uopcache::core::FurbysPipeline;
use uopcache::model::FrontendConfig;
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant};

fn main() {
    // 1. Build a synthetic Kafka trace (stands in for an Intel PT trace).
    let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, 60_000);
    let cfg = FrontendConfig::zen3();
    println!(
        "workload: {} PW lookups, {} micro-ops\n",
        trace.len(),
        trace.total_uops()
    );

    // 2. Baseline: LRU-managed 512-entry micro-op cache.
    let lru = Frontend::builder(cfg)
        .policy(LruPolicy::new())
        .build()
        .run(&trace);
    println!(
        "LRU    : {:6.2}% uop miss rate, IPC {:.3}",
        lru.uopc.uop_miss_rate() * 100.0,
        lru.ipc()
    );

    // 3. FURBYS: profile with the FLACK oracle, group hit rates with Jenks
    //    natural breaks, deploy the hinted binary.
    let pipeline = FurbysPipeline::new(cfg);
    let profile = pipeline.profile(&trace);
    let furbys = pipeline.deploy_and_run(&profile, &trace);
    println!(
        "FURBYS : {:6.2}% uop miss rate, IPC {:.3}",
        furbys.uopc.uop_miss_rate() * 100.0,
        furbys.ipc()
    );

    println!(
        "\nFURBYS reduces missed micro-ops by {:.2}% over LRU \
         (bypassing {:.1}% of insertions; coverage {:.1}%)",
        furbys.uopc.miss_reduction_vs(&lru.uopc),
        furbys.uopc.bypass_rate() * 100.0,
        furbys.uopc.replacement_coverage() * 100.0,
    );
}
