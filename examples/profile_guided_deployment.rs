//! The full 7-step FURBYS deployment workflow (paper Fig. 6), including the
//! cross-input scenario of the paper's Fig. 18: profile a service on
//! yesterday's traffic, deploy the hinted binary on today's.
//!
//! ```text
//! cargo run --release --example profile_guided_deployment
//! ```

use uopcache::cache::LruPolicy;
use uopcache::core::{Flack, FurbysPipeline};
use uopcache::model::FrontendConfig;
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant};

fn main() {
    let app = AppId::Finagle;
    let cfg = FrontendConfig::zen3();
    let len = 60_000;

    // STEP 1: collect execution traces on two training inputs (Intel PT in
    // production; synthetic here). STEP 2 is implicit: a LookupTrace *is*
    // the replacement-independent PW lookup sequence.
    let train_a = build_trace(app, InputVariant::new(0), len);
    let train_b = build_trace(app, InputVariant::new(1), len);

    // STEPs 3-5: FLACK decisions, replayed at micro-op granularity, yield
    // per-PW hit rates.
    let flack = Flack::new().run(&train_a, &cfg.uop_cache);
    println!(
        "FLACK on the training input: {:.2}% uop miss rate ({} PWs profiled)",
        flack.stats.uop_miss_rate() * 100.0,
        flack.hit_rates.len()
    );

    // STEP 6: Jenks natural breaks grouping into 3-bit weights, injected as
    // binary hints.
    let pipeline = FurbysPipeline::new(cfg);
    let profile = pipeline.profile_merged(&[train_a, train_b]);
    println!(
        "hint map: {} start addresses marked, {} weight groups",
        profile.hints.len(),
        profile.hints.groups()
    );
    // The hint map serialises alongside the binary.
    let json = profile.hints.to_json().expect("serialisable");
    println!("serialised hints: {} bytes of JSON", json.len());

    // STEP 7: deploy on a *held-out* input.
    let test = build_trace(app, InputVariant::new(2), len);
    let lru = Frontend::builder(cfg)
        .policy(LruPolicy::new())
        .build()
        .run(&test);
    let furbys = pipeline.deploy_and_run(&profile, &test);
    println!(
        "\ndeployment on an unseen input:\n  LRU    miss rate {:6.2}%\n  FURBYS miss rate {:6.2}%  ({:+.2}% misses vs LRU)",
        lru.uopc.uop_miss_rate() * 100.0,
        furbys.uopc.uop_miss_rate() * 100.0,
        -furbys.uopc.miss_reduction_vs(&lru.uopc),
    );

    // Same-input reference, to show how much of the benefit transfers.
    let same_profile = pipeline.profile(&test);
    let same = pipeline.deploy_and_run(&same_profile, &test);
    let cross_red = furbys.uopc.miss_reduction_vs(&lru.uopc);
    let same_red = same.uopc.miss_reduction_vs(&lru.uopc);
    println!(
        "  cross-input profile retains {:.1}% of the same-input benefit \
         (paper: 94.34%)",
        if same_red.abs() < 1e-9 {
            0.0
        } else {
            cross_red / same_red * 100.0
        }
    );
}
