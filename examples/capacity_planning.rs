//! Capacity planning with the simulator: sweep micro-op cache geometries for
//! a custom workload and find the cheapest configuration meeting a miss-rate
//! target — the paper's ISO-performance argument (Fig. 12) from a user's
//! perspective: a better replacement policy buys you silicon.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use uopcache::cache::LruPolicy;
use uopcache::core::FurbysPipeline;
use uopcache::model::FrontendConfig;
use uopcache::power::EnergyModel;
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace_with_spec, AppId, InputVariant};

fn main() {
    // A custom workload: take the MySQL model but double the code footprint
    // (e.g. a plugin-heavy deployment).
    let mut spec = AppId::Mysql.spec();
    spec.regions *= 2;
    let trace = build_trace_with_spec(&spec, InputVariant::DEFAULT, 60_000);
    println!(
        "custom workload: footprint {} entries ({:.1}x the 512-entry cache)\n",
        trace.footprint_entries(8),
        trace.footprint_entries(8) as f64 / 512.0
    );

    println!(
        "{:>8} {:>6} | {:>12} {:>10} | {:>12} {:>10}",
        "entries", "ways", "LRU miss%", "LRU PPW", "FURBYS miss%", "FURBYS PPW"
    );
    for entries in [256u32, 512, 768, 1024, 2048] {
        let mut cfg = FrontendConfig::zen3();
        cfg.uop_cache = cfg.uop_cache.with_entries(entries);
        let model = EnergyModel::zen3_22nm(&cfg);

        let lru = Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(&trace);
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        let furbys = pipeline.deploy_and_run(&profile, &trace);

        println!(
            "{:>8} {:>6} | {:>11.2}% {:>10.2} | {:>11.2}% {:>10.2}",
            entries,
            cfg.uop_cache.ways,
            lru.uopc.uop_miss_rate() * 100.0,
            model.evaluate(&lru).ppw(),
            furbys.uopc.uop_miss_rate() * 100.0,
            model.evaluate(&furbys).ppw(),
        );
    }

    println!(
        "\nReading the table: find the smallest FURBYS row whose miss rate \
         beats the LRU row you were going to build — that capacity difference \
         is what the replacement policy is worth (the paper finds ~1.5x)."
    );
}
