//! Compare every replacement policy — online baselines, the offline oracles
//! and the paper's FLACK/FURBYS — on one application.
//!
//! ```text
//! cargo run --release --example policy_comparison [app] [accesses]
//! ```
//! `app` is a Table II name (default `postgres`).

use uopcache::cache::{LruPolicy, UopCache};
use uopcache::core::{Flack, FurbysPipeline};
use uopcache::model::FrontendConfig;
use uopcache::offline::BeladyPolicy;
use uopcache::policies::{
    run_trace, GhrpPolicy, MockingjayPolicy, ShipPlusPlusPolicy, SrripPolicy,
};
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = args
        .first()
        .and_then(|name| AppId::ALL.into_iter().find(|a| a.name() == name))
        .unwrap_or(AppId::Postgres);
    let len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60_000);

    let cfg = FrontendConfig::zen3();
    let trace = build_trace(app, InputVariant::DEFAULT, len);
    println!(
        "{app}: {len} lookups, footprint {} entries\n",
        trace.footprint_entries(8)
    );
    println!("{:<22} {:>10} {:>14}", "policy", "miss rate", "vs LRU");

    // Online policies through the timed frontend simulator.
    let lru = Frontend::builder(cfg)
        .policy(LruPolicy::new())
        .build()
        .run(&trace);
    let report = |name: &str, miss_rate: f64, reduction: f64| {
        println!("{name:<22} {:>9.2}% {reduction:>+13.2}%", miss_rate * 100.0);
    };
    report("LRU (baseline)", lru.uopc.uop_miss_rate(), 0.0);

    let online: Vec<Box<dyn uopcache::cache::PwReplacementPolicy>> = vec![
        Box::new(SrripPolicy::new()),
        Box::new(ShipPlusPlusPolicy::new()),
        Box::new(MockingjayPolicy::new()),
        Box::new(GhrpPolicy::new()),
    ];
    for policy in online {
        let name = policy.name();
        let r = Frontend::builder(cfg).policy(policy).build().run(&trace);
        report(
            name,
            r.uopc.uop_miss_rate(),
            r.uopc.miss_reduction_vs(&lru.uopc),
        );
    }

    // FURBYS (profile-guided).
    let pipeline = FurbysPipeline::new(cfg);
    let profile = pipeline.profile(&trace);
    let furbys = pipeline.deploy_and_run(&profile, &trace);
    report(
        "FURBYS",
        furbys.uopc.uop_miss_rate(),
        furbys.uopc.miss_reduction_vs(&lru.uopc),
    );

    // Offline oracles (synchronous placement replay, vs a synchronous LRU).
    println!("\noffline bounds (synchronous replay):");
    let mut sync_lru = UopCache::new(cfg.uop_cache, Box::new(LruPolicy::new()));
    let sync_lru_stats = run_trace(&mut sync_lru, &trace);
    let mut belady = UopCache::new(cfg.uop_cache, Box::new(BeladyPolicy::from_trace(&trace)));
    let belady_stats = run_trace(&mut belady, &trace);
    report(
        "Belady",
        belady_stats.uop_miss_rate(),
        belady_stats.miss_reduction_vs(&sync_lru_stats),
    );
    for variant in [Flack::ablation(false, false, false), Flack::new()] {
        let out = variant.run(&trace, &cfg.uop_cache);
        report(
            variant.label(),
            out.stats.uop_miss_rate(),
            out.stats.miss_reduction_vs(&sync_lru_stats),
        );
    }
}
