//! Observability must never perturb the simulation, and instrumented output
//! must stay a pure function of the task keys:
//!
//! * a run with a [`NullRecorder`] (or any recorder) produces a `SimResult`
//!   identical to an uninstrumented baseline;
//! * a `--metrics` sweep renders byte-identical JSON at `--jobs` 1, 2 and 8,
//!   sampled event subsets included.

use uopcache::exec::Engine;
use uopcache::model::FrontendConfig;
use uopcache::obs::{MetricsRecorder, NullRecorder, SamplingRecorder};
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant};
use uopcache_bench::sweep::{run_sweep, SweepSpec, SAMPLE_EVERY};

fn metrics_spec() -> SweepSpec {
    SweepSpec {
        cfg: FrontendConfig::zen3(),
        config_name: "zen3".to_string(),
        apps: vec![AppId::Kafka, AppId::Postgres],
        policies: vec![
            "LRU".to_string(),
            "FURBYS".to_string(),
            "Random".to_string(),
        ],
        variant: 0,
        len: 2_500,
        metrics: true,
        sample: None,
        scale: 1,
    }
}

#[test]
fn metrics_sweep_json_is_byte_identical_across_worker_counts() {
    let spec = metrics_spec();
    let jobs1 = run_sweep(&spec, &Engine::new(1)).to_json();
    let jobs2 = run_sweep(&spec, &Engine::new(2)).to_json();
    let jobs8 = run_sweep(&spec, &Engine::new(8)).to_json();
    assert_eq!(jobs1, jobs2, "--jobs 2 diverged from the serial path");
    assert_eq!(jobs1, jobs8, "--jobs 8 diverged from the serial path");
    assert!(
        jobs1.contains("\"events\":[{") && jobs1.contains("\"totals\":{"),
        "metrics mode carries sampled events and merged totals"
    );
}

#[test]
fn recorders_do_not_perturb_the_simulation() {
    let cfg = FrontendConfig::zen3();
    let trace = build_trace(AppId::Clang, InputVariant::DEFAULT, 8_000);
    let policy = || uopcache::cache::LruPolicy::new();

    let baseline = Frontend::builder(cfg).policy(policy()).build().run(&trace);
    let nulled = Frontend::builder(cfg)
        .policy(policy())
        .recorder(NullRecorder::new())
        .build()
        .run(&trace);
    let metered = Frontend::builder(cfg)
        .policy(policy())
        .recorder(MetricsRecorder::new(Box::new(SamplingRecorder::new(
            7,
            SAMPLE_EVERY,
        ))))
        .build()
        .run(&trace);
    assert_eq!(baseline, nulled, "NullRecorder changed the simulation");
    assert_eq!(baseline, metered, "MetricsRecorder changed the simulation");
}

#[test]
fn metrics_counters_agree_with_simulator_statistics() {
    let cfg = FrontendConfig::zen3();
    let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, 5_000);
    let mut frontend = Frontend::builder(cfg)
        .policy(uopcache::cache::LruPolicy::new())
        .recorder(MetricsRecorder::new(Box::new(NullRecorder::new())))
        .build();
    let result = frontend.run(&trace);
    let recorder = frontend.take_recorder().expect("recorder installed");
    let m = recorder.metrics().expect("metrics recorder").clone();
    assert_eq!(m.counter("insertions"), result.uopc.insertions);
    // The event stream tags in-place window upgrades as evictions with an
    // `upgrade` verdict; the simulator's `evicted_pws` counts only true
    // replacement evictions.
    assert_eq!(
        m.counter("evictions") - m.counter("upgrades"),
        result.uopc.evicted_pws,
    );
    assert_eq!(
        m.counter("hits") + m.counter("partial_hits") + m.counter("misses"),
        result.uopc.pw_hits + result.uopc.pw_partial_hits + result.uopc.pw_misses,
        "every lookup emits exactly one lookup-class event"
    );
}

#[test]
fn metrics_mode_reports_the_same_numbers_as_a_plain_sweep() {
    let mut plain = metrics_spec();
    plain.metrics = false;
    let engine = Engine::new(4);
    let instrumented = run_sweep(&metrics_spec(), &engine);
    let uninstrumented = run_sweep(&plain, &engine);
    assert_eq!(instrumented.cells.len(), uninstrumented.cells.len());
    for (a, b) in instrumented.cells.iter().zip(&uninstrumented.cells) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.result, b.result, "instrumentation perturbed {}", a.key);
    }
}
