//! Golden-trace regression tests: seeded sweeps whose canonical JSON —
//! per-policy hit rates, MPKI, eviction counts, seeds — is pinned under
//! `tests/golden/`. Any behavioural drift in the trace generator, the
//! simulator, a policy, or the seeding scheme shows up as a diff here.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_outputs
//! ```
//!
//! then commit the rewritten files with a note on why the numbers moved.

use std::path::PathBuf;
use uopcache::exec::Engine;
use uopcache::model::FrontendConfig;
use uopcache::trace::AppId;
use uopcache_bench::sweep::{run_sweep, SweepSpec, SCHEMA_VERSION};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Runs the spec at two worker counts, checks they agree, then compares the
/// canonical JSON against the committed golden file (or rewrites it when
/// `UPDATE_GOLDEN=1`).
fn check_golden(name: &str, spec: &SweepSpec) {
    let actual = run_sweep(spec, &Engine::new(1)).to_json();
    let parallel = run_sweep(spec, &Engine::new(4)).to_json();
    assert_eq!(actual, parallel, "{name}: sweep is not jobs-invariant");
    assert_eq!(SCHEMA_VERSION, 1, "bumping the schema needs new goldens");
    assert!(
        actual.starts_with("{\"schema_version\":1,"),
        "{name}: canonical JSON must lead with the schema version"
    );

    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_outputs`",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected.trim_end(),
        "{name}: output drifted from the golden reference; if the change is \
         intentional, regenerate with `UPDATE_GOLDEN=1 cargo test --test \
         golden_outputs` and commit the diff"
    );
}

fn apps() -> Vec<AppId> {
    vec![AppId::Kafka, AppId::Postgres, AppId::Clang]
}

fn policies() -> Vec<String> {
    // A cross-section of the registry: the paper roster's extremes, the
    // seeded control, one representative per zoo family (recency, frequency,
    // clock, segmented, ghost-adaptive) and the set-dueling meta-policy.
    [
        "LRU",
        "Thermometer",
        "FURBYS",
        "Random",
        "MRU",
        "LFU",
        "CLOCK",
        "SLRU",
        "2Q",
        "ARC",
        "CAR",
        "set-dueling",
    ]
    .iter()
    .map(|p| (*p).to_string())
    .collect()
}

#[test]
fn golden_zen3() {
    check_golden(
        "zen3.json",
        &SweepSpec {
            cfg: FrontendConfig::zen3(),
            config_name: "zen3".to_string(),
            apps: apps(),
            policies: policies(),
            variant: 0,
            len: 4_000,
            metrics: false,
            sample: None,
            scale: 1,
        },
    );
}

#[test]
fn golden_zen4_small() {
    // The Zen4-like frontend at a quarter of its capacity: exercises a
    // different geometry (more conflict misses, more evictions) and a
    // different input variant than the zen3 golden.
    let mut cfg = FrontendConfig::zen4();
    cfg.uop_cache = cfg.uop_cache.with_entries(cfg.uop_cache.entries / 4);
    check_golden(
        "zen4_small.json",
        &SweepSpec {
            cfg,
            config_name: "zen4_small".to_string(),
            apps: apps(),
            policies: policies(),
            variant: 1,
            len: 4_000,
            metrics: false,
            sample: None,
            scale: 1,
        },
    );
}
