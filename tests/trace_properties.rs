//! Property tests for the synthetic workload generator — the inputs every
//! benchmark baseline and golden output depends on.
//!
//! Three families of properties:
//!
//! * **seeded reproducibility** — a trace is a pure function of
//!   (app, variant, length); different variants and apps genuinely differ;
//! * **Zipf shape** — the region popularity distribution is monotone in
//!   rank, normalised, and its sampler matches its own pmf empirically;
//! * **PW length distribution** — per application, window lengths stay
//!   within the tolerances implied by the `WorkloadSpec` calibration
//!   (basic-block size, uops per instruction, termination mix).

use uopcache::model::rng::Prng;
use uopcache::model::PwTermination;
use uopcache::trace::{build_trace, AppId, InputVariant, WorkloadSpec, Zipf};

#[test]
fn traces_are_pure_functions_of_their_seeds() {
    for app in [AppId::Kafka, AppId::Postgres, AppId::Python] {
        for variant in [0u32, 1, 7] {
            let a = build_trace(app, InputVariant(variant), 5_000);
            let b = build_trace(app, InputVariant(variant), 5_000);
            assert_eq!(a, b, "{}/{variant}: trace is not reproducible", app.name());
        }
        let v0 = build_trace(app, InputVariant(0), 5_000);
        let v1 = build_trace(app, InputVariant(1), 5_000);
        assert_ne!(v0, v1, "{}: variants must differ", app.name());
    }
    let kafka = build_trace(AppId::Kafka, InputVariant(0), 5_000);
    let postgres = build_trace(AppId::Postgres, InputVariant(0), 5_000);
    assert_ne!(kafka, postgres, "different apps must differ");
}

#[test]
fn zipf_pmf_is_monotone_in_rank_and_normalised() {
    for alpha in [0.5, 0.98, 1.5] {
        let z = Zipf::new(512, alpha);
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for k in 0..z.len() {
            let p = z.pmf(k);
            assert!(
                p <= prev + 1e-12,
                "alpha {alpha}: pmf not monotone at rank {k} ({p} > {prev})"
            );
            assert!(p > 0.0, "alpha {alpha}: pmf must be positive at rank {k}");
            sum += p;
            prev = p;
        }
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "alpha {alpha}: pmf sums to {sum}, not 1"
        );
    }
}

#[test]
fn zipf_sampler_matches_its_pmf_empirically() {
    const N: usize = 64;
    const DRAWS: usize = 200_000;
    let z = Zipf::new(N, 0.98);
    let mut rng = Prng::seed_from_u64(0x21bf_0001);
    let mut counts = [0u32; N];
    for _ in 0..DRAWS {
        counts[z.sample(&mut rng)] += 1;
    }
    // Rank-frequency monotonicity, coarsened: each octave of ranks is more
    // popular than the next (single adjacent ranks may swap by noise).
    let per_rank =
        |lo: usize, hi: usize| f64::from(counts[lo..hi].iter().sum::<u32>()) / (hi - lo) as f64;
    let o0 = per_rank(0, 8);
    let o1 = per_rank(8, 16);
    let o2 = per_rank(16, 32);
    let o3 = per_rank(32, 64);
    assert!(
        o0 > o1 && o1 > o2 && o2 > o3,
        "empirical rank-frequency must fall by octave: {o0} {o1} {o2} {o3}"
    );
    // The head matches the analytic pmf within 5% relative error.
    for (k, &count) in counts.iter().enumerate().take(4) {
        let expected = z.pmf(k) * DRAWS as f64;
        let got = f64::from(count);
        assert!(
            (got - expected).abs() / expected < 0.05,
            "rank {k}: {got} draws vs expected {expected:.0}"
        );
    }
    // The sampler is itself seed-deterministic.
    let mut rng2 = Prng::seed_from_u64(0x21bf_0001);
    let replay: Vec<usize> = (0..1_000).map(|_| z.sample(&mut rng2)).collect();
    let mut rng3 = Prng::seed_from_u64(0x21bf_0001);
    let replay2: Vec<usize> = (0..1_000).map(|_| z.sample(&mut rng3)).collect();
    assert_eq!(replay, replay2);
}

#[test]
fn pw_lengths_stay_within_spec_tolerances() {
    for app in AppId::ALL {
        let spec = WorkloadSpec::for_app(app);
        let t = build_trace(app, InputVariant(0), 20_000);
        let n = t.len() as f64;
        let mean = t.iter().map(|a| f64::from(a.pw.uops)).sum::<f64>() / n;
        let max = t.iter().map(|a| a.pw.uops).max().expect("non-empty");

        // A PW spans at least one basic block (it ends at a *taken* branch
        // or a line boundary, and not-taken branches run through), so its
        // mean length sits a little above one block's worth of micro-ops —
        // and nowhere near two blocks' worth for these taken biases.
        let bb_uops = spec.insts_per_bb * spec.uops_per_inst;
        let ratio = mean / bb_uops;
        assert!(
            (0.9..=1.8).contains(&ratio),
            "{}: mean PW length {mean:.2} uops is {ratio:.2}x the calibrated \
             block size {bb_uops:.2}",
            app.name()
        );
        // Windows terminate at the latest on a 64-byte line boundary.
        assert!(
            max <= 64,
            "{}: max PW length {max} exceeds any line-bounded window",
            app.name()
        );

        // Termination mix: both mechanisms must occur, with taken branches
        // dominating (the walker's taken bias plus loop back-edges).
        let taken = t
            .iter()
            .filter(|a| a.pw.term == PwTermination::TakenBranch)
            .count() as f64
            / n;
        assert!(
            (0.55..=0.95).contains(&taken),
            "{}: taken-branch termination fraction {taken:.2} out of tolerance",
            app.name()
        );
    }
}

/// Apps calibrated with larger basic blocks generate longer windows — the
/// cross-app ordering the paper's Table II relies on.
#[test]
fn pw_lengths_order_by_calibrated_block_size() {
    let mean_uops = |app: AppId| {
        let t = build_trace(app, InputVariant(0), 20_000);
        t.iter().map(|a| f64::from(a.pw.uops)).sum::<f64>() / t.len() as f64
    };
    // Postgres (6.5 insts/bb) vs Python (3.8 insts/bb): a wide calibration
    // gap must survive into the generated streams.
    assert!(
        mean_uops(AppId::Postgres) > mean_uops(AppId::Python),
        "calibrated block-size ordering lost in generation"
    );
}

/// `--scale` must produce *phase-structured repetition with drift*, not a
/// tiled copy of the base trace: epoch 0 is exactly the unscaled trace, every
/// later epoch walks the same program (heavily overlapping code footprint)
/// under a deterministically drifted spec, so no two epochs are identical.
#[test]
fn scaled_traces_repeat_phase_structure_without_tiling() {
    use std::collections::HashSet;
    use uopcache::trace::{build_trace_scaled, Program};

    for app in [AppId::Kafka, AppId::Postgres] {
        let program = Program::synthesize(&app.spec());
        let blocks: Vec<_> = program.regions.iter().flat_map(|r| r.bbs.iter()).collect();
        let image_lo = blocks.iter().map(|bb| bb.addr.get()).min().unwrap();
        let image_hi = blocks
            .iter()
            .map(|bb| bb.addr.get() + u64::from(bb.bytes))
            .max()
            .unwrap();
        let base = build_trace(app, InputVariant(0), 3_000);
        let scaled = build_trace_scaled(app, InputVariant(0), 3_000, 4);

        // Scaling is a pure function and yields exactly `scale` base-length
        // epochs; scale 1 degenerates to the unscaled trace.
        assert_eq!(scaled.len(), 4 * base.len(), "{}", app.name());
        assert_eq!(scaled, build_trace_scaled(app, InputVariant(0), 3_000, 4));
        assert_eq!(build_trace_scaled(app, InputVariant(0), 3_000, 1), base);
        assert_eq!(scaled.slice(0..base.len()), base, "{}", app.name());

        let starts: HashSet<_> = base.iter().map(|a| a.pw.start).collect();
        for e in 1..4 {
            let epoch = scaled.slice(e * base.len()..(e + 1) * base.len());
            assert_ne!(
                epoch,
                base,
                "{}: epoch {e} is a verbatim tile of epoch 0",
                app.name()
            );
            // Same program, different walk: every epoch stays inside the one
            // synthesized program image...
            assert!(
                epoch.iter().all(|a| {
                    let s = a.pw.start.get();
                    (image_lo..image_hi).contains(&s)
                }),
                "{}: epoch {e} fetches outside the program image",
                app.name()
            );
            // ...and still spends a solid share of its accesses in epoch-0
            // code (the drifted Zipf skew may shift the cold tail, but the
            // hot blocks persist across epochs).
            let shared_accesses = epoch
                .iter()
                .filter(|a| starts.contains(&a.pw.start))
                .count();
            assert!(
                shared_accesses * 3 >= epoch.len(),
                "{}: epoch {e} spends only {shared_accesses}/{} accesses in epoch-0 code",
                app.name(),
                epoch.len()
            );
        }
    }
}
