//! Property-style checks of the `uopcache-exec` engine under randomized
//! submission orders and worker counts.
//!
//! Random inputs come from the workspace's deterministic seeded [`Prng`], so
//! any failure reproduces exactly from the printed round number.

use std::sync::atomic::{AtomicUsize, Ordering};
use uopcache::exec::{Engine, TaskKey};
use uopcache::model::rng::{Prng, Rng};

/// Fisher-Yates shuffle driven by the workspace Prng.
fn shuffle<T>(rng: &mut Prng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i as u64) as usize;
        items.swap(i, j);
    }
}

fn keys(n: usize) -> Vec<TaskKey> {
    (0..n)
        .map(|i| TaskKey::new(["prop", &format!("task{i:03}")]))
        .collect()
}

/// Every submitted task runs exactly once, whatever the submission order or
/// worker count.
#[test]
fn every_task_runs_exactly_once() {
    let mut rng = Prng::seed_from_u64(0x5eed_ec01);
    for round in 0..8 {
        let n = rng.gen_range(1..40u64) as usize;
        let jobs = rng.gen_range(1..9u64) as usize;
        let mut order: Vec<usize> = (0..n).collect();
        shuffle(&mut rng, &mut order);

        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let all = keys(n);
        let tasks: Vec<(TaskKey, usize)> = order.iter().map(|&i| (all[i].clone(), i)).collect();
        let outcome = Engine::new(jobs).run(tasks, |_key, _seed, i: usize| {
            counters[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "round {round}: task {i} did not run exactly once (n={n}, jobs={jobs})"
            );
        }
        assert_eq!(outcome.outcomes.len(), n, "round {round}");
    }
}

/// Outcomes come back in submission order, and sorting them by key is a pure
/// reordering of the same set — the merge rule every caller relies on.
#[test]
fn outcomes_merge_in_submission_then_key_order() {
    let mut rng = Prng::seed_from_u64(0x5eed_ec02);
    for round in 0..8 {
        let n = rng.gen_range(2..30u64) as usize;
        let jobs = rng.gen_range(1..9u64) as usize;
        let mut order: Vec<usize> = (0..n).collect();
        shuffle(&mut rng, &mut order);

        let all = keys(n);
        let tasks: Vec<(TaskKey, usize)> = order.iter().map(|&i| (all[i].clone(), i)).collect();
        let outcome = Engine::new(jobs).run(tasks, |_key, _seed, i: usize| i);

        // Submission order is preserved verbatim...
        let returned: Vec<usize> = outcome
            .outcomes
            .iter()
            .map(|o| *o.result.as_ref().expect("no panics here"))
            .collect();
        assert_eq!(returned, order, "round {round} (jobs={jobs})");
        // ...and a key-order sort recovers the canonical 0..n sequence.
        let mut by_key = outcome.outcomes;
        by_key.sort_by(|a, b| a.key.cmp(&b.key));
        let sorted: Vec<usize> = by_key
            .iter()
            .map(|o| *o.result.as_ref().expect("no panics here"))
            .collect();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "round {round}");
    }
}

/// A panicking task is reported as a structured failure carrying its key and
/// seed; sibling tasks are unaffected (no poisoning, no abort).
#[test]
fn panics_are_isolated_and_structured() {
    let mut rng = Prng::seed_from_u64(0x5eed_ec03);
    for round in 0..8 {
        let n = rng.gen_range(3..25u64) as usize;
        let jobs = rng.gen_range(1..9u64) as usize;
        let bad = rng.gen_range(0..n as u64) as usize;

        let all = keys(n);
        let tasks: Vec<(TaskKey, usize)> = (0..n).map(|i| (all[i].clone(), i)).collect();
        let outcome = Engine::new(jobs).run(tasks, |_key, _seed, i: usize| {
            assert!(i != bad, "task {i} was told to fail");
            i
        });

        let failures = outcome.failures();
        assert_eq!(failures.len(), 1, "round {round} (jobs={jobs})");
        assert_eq!(failures[0].key, all[bad]);
        assert_eq!(failures[0].seed, all[bad].seed());
        assert!(failures[0].message.contains("told to fail"));
        let ok = outcome.outcomes.iter().filter(|o| o.result.is_ok()).count();
        assert_eq!(ok, n - 1, "round {round}: siblings were poisoned");
    }
}

/// The seed handed to a task depends only on its key — not on submission
/// position, sibling tasks, or worker count.
#[test]
fn seeds_depend_only_on_the_key() {
    let mut rng = Prng::seed_from_u64(0x5eed_ec04);
    let all = keys(12);
    let reference: Vec<u64> = all.iter().map(TaskKey::seed).collect();
    for round in 0..8 {
        let jobs = rng.gen_range(1..9u64) as usize;
        let mut order: Vec<usize> = (0..all.len()).collect();
        shuffle(&mut rng, &mut order);
        let tasks: Vec<(TaskKey, usize)> = order.iter().map(|&i| (all[i].clone(), i)).collect();
        let outcome = Engine::new(jobs).run(tasks, |_key, seed, i: usize| (i, seed));
        for o in &outcome.outcomes {
            let (i, seen) = *o.result.as_ref().expect("no panics here");
            assert_eq!(seen, reference[i], "round {round} (jobs={jobs})");
            assert_eq!(o.seed, reference[i], "round {round}");
        }
    }
}
