//! Allocation budget for the simulation hot path.
//!
//! The kernel is designed so that once a cache has been constructed and
//! warmed, driving a trace through it performs **zero heap allocations**:
//! set storage is a preallocated structure-of-arrays arena, victim and
//! resident scratch live in reusable buffers, and every registered policy
//! reserves its side tables at [`prepare`] time — the figure roster, the
//! classic zoo (ghost rings included) and the set-dueling meta-policy all
//! stay off the allocator on the lookup/insert path.
//!
//! This test wires the bench harness's [`CountingAllocator`] in as the
//! test binary's global allocator and pins the budget at exactly zero for
//! a steady-state pass over **every policy in [`PolicyId::ALL`]**.
//! Everything is measured inside one `#[test]` so no concurrently running
//! test can pollute the global counters.
//!
//! [`prepare`]: uopcache::cache::PwReplacementPolicy::prepare
//! [`CountingAllocator`]: uopcache_bench::hotpath::CountingAllocator

use uopcache::cache::UopCache;
use uopcache::model::FrontendConfig;
use uopcache::policies::run_trace;
use uopcache::trace::{build_trace, AppId, InputVariant};
use uopcache_bench::hotpath::CountingAllocator;
use uopcache_bench::policies::{PolicyId, ProfileInputs};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const LEN: usize = 8_000;

/// Seed for the one seeded policy (Random); any fixed value works, the
/// budget is about allocations, not decisions.
const SEED: u64 = 7;

/// Runs `trace` once more over a warmed cache and returns how many heap
/// allocations the pass performed.
fn steady_state_allocs(cache: &mut UopCache, trace: &uopcache::model::LookupTrace) -> (u64, u64) {
    let before_calls = CountingAllocator::allocations();
    let before_bytes = CountingAllocator::bytes_allocated();
    let stats = run_trace(cache, trace);
    let calls = CountingAllocator::allocations() - before_calls;
    let bytes = CountingAllocator::bytes_allocated() - before_bytes;
    assert_eq!(stats.lookups, LEN as u64, "the pass must cover the trace");
    (calls, bytes)
}

#[test]
fn steady_state_lookup_path_does_not_allocate_for_any_registered_policy() {
    // The counter must actually be live in this binary, or the zero
    // assertions below would be vacuous.
    assert!(
        CountingAllocator::is_active(),
        "CountingAllocator is not installed as the global allocator"
    );

    let cfg = FrontendConfig::zen3();
    for app in [AppId::Kafka, AppId::Postgres] {
        let trace = build_trace(app, InputVariant(0), LEN);
        // Profile construction allocates freely; it happens once per app,
        // outside the measured window, like any offline training pass.
        let profiles = ProfileInputs::build(&cfg, &trace);
        for id in PolicyId::ALL {
            let mut cache = UopCache::new(cfg.uop_cache, id.build(&cfg, &profiles, SEED));
            // Warmup: fill the sets, let ghost rings and side tables reach
            // their steady shape, and cross at least one duel phase.
            run_trace(&mut cache, &trace);

            let (calls, bytes) = steady_state_allocs(&mut cache, &trace);
            assert_eq!(
                (calls, bytes),
                (0, 0),
                "{}/{}: steady-state pass allocated {calls} times ({bytes} bytes)",
                id.name(),
                app.name(),
            );
        }
    }
}
