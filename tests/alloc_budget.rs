//! Allocation budget for the simulation hot path.
//!
//! The kernel is designed so that once a cache has been constructed and
//! warmed, driving a trace through it performs **zero heap allocations**:
//! set storage is a preallocated structure-of-arrays arena, victim and
//! resident scratch live in reusable buffers, and the stateless policies
//! (LRU) and table-based policies with [`prepare`]-time reservation (SRRIP)
//! never touch the allocator on the lookup/insert path.
//!
//! This test wires the bench harness's [`CountingAllocator`] in as the
//! test binary's global allocator and pins the budget at exactly zero for
//! a steady-state pass. Everything is measured inside one `#[test]` so no
//! concurrently running test can pollute the global counters.
//!
//! [`prepare`]: uopcache::cache::PwReplacementPolicy::prepare
//! [`CountingAllocator`]: uopcache_bench::hotpath::CountingAllocator

use uopcache::cache::{LruPolicy, PwReplacementPolicy, UopCache};
use uopcache::model::UopCacheConfig;
use uopcache::policies::{run_trace, SrripPolicy};
use uopcache::trace::{build_trace, AppId, InputVariant};
use uopcache_bench::hotpath::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const LEN: usize = 8_000;

type PolicyCtor = fn() -> Box<dyn PwReplacementPolicy>;

/// Runs `trace` once more over a warmed cache and returns how many heap
/// allocations the pass performed.
fn steady_state_allocs(cache: &mut UopCache, trace: &uopcache::model::LookupTrace) -> (u64, u64) {
    let before_calls = CountingAllocator::allocations();
    let before_bytes = CountingAllocator::bytes_allocated();
    let stats = run_trace(cache, trace);
    let calls = CountingAllocator::allocations() - before_calls;
    let bytes = CountingAllocator::bytes_allocated() - before_bytes;
    assert_eq!(stats.lookups, LEN as u64, "the pass must cover the trace");
    (calls, bytes)
}

#[test]
fn steady_state_lookup_path_does_not_allocate() {
    // The counter must actually be live in this binary, or the zero
    // assertions below would be vacuous.
    assert!(
        CountingAllocator::is_active(),
        "CountingAllocator is not installed as the global allocator"
    );

    let policies: [(&str, PolicyCtor); 2] = [
        ("LRU", || Box::new(LruPolicy::new())),
        ("SRRIP", || Box::new(SrripPolicy::new())),
    ];
    for (name, make_policy) in policies {
        for app in [AppId::Kafka, AppId::Postgres] {
            let trace = build_trace(app, InputVariant(0), LEN);
            let mut cache = UopCache::new(UopCacheConfig::zen3(), make_policy());
            // Warmup: fill the sets and let lazily grown side tables reach
            // their steady shape.
            run_trace(&mut cache, &trace);

            let (calls, bytes) = steady_state_allocs(&mut cache, &trace);
            assert_eq!(
                (calls, bytes),
                (0, 0),
                "{name}/{}: steady-state pass allocated {calls} times ({bytes} bytes)",
                app.name(),
            );
        }
    }
}
