//! Shadow-model differential test: the set-associative `UopCache` under LRU,
//! configured fully associative (one set), must agree access-for-access with
//! the independent `ShadowFaCache` reference model — same hit/miss outcome,
//! same resident set after every access (which pins the eviction sequence),
//! same entry occupancy.
//!
//! The streams are randomized but seeded, and deliberately include the two
//! interesting PW interactions:
//!
//! * **overlapping windows** — the same start address looked up with two
//!   different lengths (a sometimes-taken branch inside the window), which
//!   exercises partial hits and the upgrade-in-place path;
//! * **recency churn** — a Zipf-ish skew so some windows are hot (never
//!   evicted) and others cycle through the LRU tail.

use uopcache::cache::{LruPolicy, ShadowFaCache, UopCache};
use uopcache::model::rng::{Prng, Rng};
use uopcache::model::{Addr, PwDesc, PwTermination, UopCacheConfig};

/// One set, 24 entries: fully associative, so the set-associative cache and
/// the FA shadow see identical capacity pressure.
fn fa_config() -> UopCacheConfig {
    UopCacheConfig {
        entries: 24,
        ways: 24,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: 24,
    }
}

struct Window {
    start: Addr,
    /// Short variant: the window up to its sometimes-taken branch.
    short_uops: u32,
    /// Long variant: the window running through that branch (same start).
    long_uops: u32,
}

fn universe(rng: &mut Prng, n: usize) -> Vec<Window> {
    (0..n)
        .map(|i| {
            let short_uops = rng.gen_range(1u32..=16);
            // Long variant caps at 96 uops = 12 entries, comfortably inside
            // both max_entries_per_pw and the shadow's capacity.
            let long_uops = short_uops + rng.gen_range(1u32..=(96 - short_uops));
            Window {
                start: Addr::new(0x1_0000 + (i as u64) * 64),
                short_uops,
                long_uops,
            }
        })
        .collect()
}

fn pw(start: Addr, uops: u32) -> PwDesc {
    PwDesc::new(start, uops, uops * 3, PwTermination::TakenBranch)
}

/// Drives one seeded stream through both models, asserting equivalence after
/// every access.
fn run_stream(seed: u64, accesses: usize) {
    let cfg = fa_config();
    let mut rng = Prng::seed_from_u64(seed);
    let windows = universe(&mut rng, 40);
    let mut cache = UopCache::new(cfg, Box::new(LruPolicy::new()));
    let mut shadow = ShadowFaCache::new(cfg.entries, cfg.uops_per_entry);

    for t in 0..accesses {
        // Zipf-ish skew: square a uniform draw so low indices dominate.
        let u = rng.gen_f64();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((u * u) * windows.len() as f64) as usize;
        let w = &windows[idx.min(windows.len() - 1)];
        // The branch inside the window is sometimes taken: mostly the short
        // window, sometimes the long one with the same start address.
        let uops = if rng.gen_bool(0.3) {
            w.long_uops
        } else {
            w.short_uops
        };
        let access = pw(w.start, uops);

        let shadow_hit = shadow.access(&access);
        let result = cache.lookup(&access);
        if !result.is_full_hit() {
            cache.insert(&access);
        }

        assert_eq!(
            shadow_hit,
            result.is_full_hit(),
            "seed {seed:#x} access {t}: hit/miss diverged on {access} \
             (shadow {shadow_hit}, cache {result:?})"
        );
        assert_eq!(
            shadow.used_entries(),
            cache.occupied_entries(),
            "seed {seed:#x} access {t}: occupancy diverged after {access}"
        );
        for w in &windows {
            assert_eq!(
                shadow.contains(w.start),
                cache.resident_uops(w.start).is_some(),
                "seed {seed:#x} access {t}: residency of {} diverged \
                 (eviction order drifted)",
                w.start
            );
        }
    }
    assert!(
        cache.stats().evicted_pws > 0,
        "seed {seed:#x}: the stream must create eviction pressure"
    );
    assert!(
        cache.stats().pw_partial_hits > 0,
        "seed {seed:#x}: overlapping windows must produce partial hits"
    );
}

#[test]
fn lru_cache_matches_shadow_reference_on_seeded_streams() {
    for seed in 0..8u64 {
        run_stream(0x5bad_0000 ^ seed, 2_000);
    }
}

/// The upgrade path specifically: a short window is resident, the long
/// variant arrives, and both models must keep exactly one (longer) window.
#[test]
fn upgrade_in_place_matches_shadow() {
    let cfg = fa_config();
    let mut cache = UopCache::new(cfg, Box::new(LruPolicy::new()));
    let mut shadow = ShadowFaCache::new(cfg.entries, cfg.uops_per_entry);
    let short = pw(Addr::new(0x40), 6);
    let long = pw(Addr::new(0x40), 30);

    for access in [&short, &long, &short, &long] {
        let shadow_hit = shadow.access(access);
        let result = cache.lookup(access);
        if !result.is_full_hit() {
            cache.insert(access);
        }
        assert_eq!(shadow_hit, result.is_full_hit(), "on {access}");
        assert_eq!(shadow.used_entries(), cache.occupied_entries());
    }
    // Both end with the long window resident.
    assert!(shadow.covers(&long));
    assert_eq!(cache.resident_uops(Addr::new(0x40)), Some(30));
}
