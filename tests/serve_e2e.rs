//! End-to-end tests for the serve daemon, run in-process over loopback TCP.
//!
//! Covers the four contracts the daemon makes:
//!
//! 1. a served job's report is byte-identical to the same spec run through
//!    the offline sweep path, at any worker count;
//! 2. a full queue answers with a structured `busy` frame instead of
//!    buffering (backpressure);
//! 3. a panicking job comes back as a structured `error` frame while the
//!    server keeps serving other clients;
//! 4. `shutdown` drains in-flight jobs — waiting clients still receive their
//!    results — and the server thread exits cleanly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use uopcache_bench::policies::PolicyRegistry;
use uopcache_bench::sweep::{run_sweep, SweepSpec};
use uopcache_exec::Engine;
use uopcache_model::FrontendConfig;
use uopcache_serve::{Client, ClientError, Server, ServerConfig};
use uopcache_trace::AppId;

fn spec(apps: &[AppId], len: usize) -> SweepSpec {
    let registry = PolicyRegistry::all();
    SweepSpec {
        cfg: FrontendConfig::zen3(),
        config_name: "zen3".to_string(),
        apps: apps.to_vec(),
        policies: ["lru", "random"]
            .iter()
            .map(|p| {
                registry
                    .resolve(p)
                    .expect("roster policies resolve")
                    .name()
                    .to_string()
            })
            .collect(),
        variant: 0,
        len,
        metrics: false,
        sample: None,
        scale: 1,
    }
}

fn server_with(cfg: ServerConfig) -> Server {
    Server::bind(cfg).expect("loopback bind")
}

fn connect(server: &uopcache_serve::ServerHandle) -> Client {
    Client::connect(server.addr(), Duration::from_secs(5)).expect("loopback connect")
}

/// A gate that holds jobs inside the runner until released, so tests can
/// deterministically fill the queue or have work in flight during shutdown.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn hold(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().expect("gate lock");
        while !*open {
            let (guard, _) = self
                .bell
                .wait_timeout(open, Duration::from_millis(50))
                .expect("gate wait");
            open = guard;
        }
    }

    fn wait_entered(&self, n: usize) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(
                std::time::Instant::now() < deadline,
                "gate never saw {n} entrants"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn release(&self) {
        *self.open.lock().expect("gate lock") = true;
        self.bell.notify_all();
    }
}

#[test]
fn served_result_is_byte_identical_to_offline_sweep_at_any_worker_count() {
    let want = spec(&[AppId::Kafka], 1_500);
    // The offline reference, computed at a deliberately different worker
    // count than either server below.
    let offline = run_sweep(&want, &Engine::new(3)).to_json();

    // Worker count and shard count both vary; neither may change a byte.
    for (jobs, shards) in [(1usize, 1usize), (4, 3)] {
        let server = server_with(ServerConfig::builder().jobs(jobs).shards(shards).build())
            .spawn()
            .expect("spawn");
        let mut client = connect(&server);
        let outcome = client
            .submit_and_wait(&want, None, Duration::from_secs(120))
            .expect("job completes");
        assert_eq!(
            outcome.report.to_string(),
            offline,
            "served bytes must match offline sweep at jobs={jobs} shards={shards}"
        );

        // Idempotent retry: resubmitting the identical spec dedupes onto the
        // finished job and returns the same bytes again.
        let again = client
            .submit_and_wait(&want, None, Duration::from_secs(30))
            .expect("retry completes");
        assert!(again.deduped, "identical resubmit must dedupe");
        assert_eq!(again.job_id, outcome.job_id);
        assert_eq!(again.report.to_string(), offline);

        client.shutdown(Duration::from_secs(5)).expect("drain ack");
        server
            .join_within(Duration::from_secs(30))
            .expect("server exits after drain")
            .expect("clean exit");
    }
}

#[test]
fn full_queue_answers_with_a_structured_busy_frame() {
    let gate = Arc::new(Gate::default());
    let runner_gate = Arc::clone(&gate);
    let server = Server::bind_with_runner(
        ServerConfig::builder().queue_capacity(1).build(),
        Box::new(move |_spec, _engine| {
            runner_gate.hold();
            "{\"schema_version\":1}".to_string()
        }),
    )
    .expect("loopback bind")
    .spawn()
    .expect("spawn");

    let mut client = connect(&server);
    // First job occupies the executor; second fills the 1-slot queue.
    client
        .submit(
            &spec(&[AppId::Kafka], 100),
            Some("occupant"),
            Duration::from_secs(5),
        )
        .expect("first job accepted");
    gate.wait_entered(1);
    client
        .submit(
            &spec(&[AppId::Mysql], 100),
            Some("queued"),
            Duration::from_secs(5),
        )
        .expect("second job queued");

    // The third submit must bounce with a busy frame, not block or buffer.
    let err = client
        .submit(
            &spec(&[AppId::Tomcat], 100),
            Some("rejected"),
            Duration::from_secs(5),
        )
        .expect_err("queue is full");
    match err {
        ClientError::Busy { reason } => {
            assert!(reason.contains("queue full"), "reason was {reason:?}")
        }
        other => panic!("expected a busy frame, got {other}"),
    }
    // The rejection leaves no trace in the job table — the id stays free for
    // a retry — but the stats counters record it.
    let unknown = client
        .status("rejected", Duration::from_secs(5))
        .expect_err("a rejected id is forgotten, not parked as failed");
    match unknown {
        ClientError::Server(message) => {
            assert!(message.contains("unknown job"), "got {message:?}")
        }
        other => panic!("expected an unknown-job error, got {other}"),
    }
    let stats = client.stats(Duration::from_secs(5)).expect("stats");
    let busy_count = stats
        .field("metrics")
        .and_then(|m| m.field("counters"))
        .and_then(|c| c.field("jobs_rejected_busy"))
        .expect("counter present")
        .as_u64();
    assert_eq!(busy_count, Some(1));

    gate.release();
    client.shutdown(Duration::from_secs(5)).expect("drain ack");
    server
        .join_within(Duration::from_secs(30))
        .expect("server exits")
        .expect("clean exit");
}

#[test]
fn busy_rejected_job_can_be_retried_once_the_queue_frees() {
    let gate = Arc::new(Gate::default());
    let runner_gate = Arc::clone(&gate);
    let server = Server::bind_with_runner(
        ServerConfig::builder().queue_capacity(1).build(),
        Box::new(move |_spec, _engine| {
            runner_gate.hold();
            "{\"schema_version\":1}".to_string()
        }),
    )
    .expect("loopback bind")
    .spawn()
    .expect("spawn");

    let mut client = connect(&server);
    // Occupy the executor and fill the 1-slot queue, then bounce a third job
    // off the full queue — the documented retry-later backpressure path.
    let victim = spec(&[AppId::Tomcat], 100);
    client
        .submit(
            &spec(&[AppId::Kafka], 100),
            Some("occupant"),
            Duration::from_secs(5),
        )
        .expect("first job accepted");
    gate.wait_entered(1);
    client
        .submit(
            &spec(&[AppId::Mysql], 100),
            Some("queued"),
            Duration::from_secs(5),
        )
        .expect("second job queued");
    let err = client
        .submit(&victim, None, Duration::from_secs(5))
        .expect_err("queue is full");
    assert!(matches!(err, ClientError::Busy { .. }), "{err}");

    // Once the backlog drains, the *same* blind retry — identical spec, so
    // an identical content-derived id — must actually run, not dedupe onto a
    // stale rejection.
    gate.release();
    client
        .wait("queued", Duration::from_secs(30))
        .expect("backlog drains");
    let outcome = client
        .submit_and_wait(&victim, None, Duration::from_secs(30))
        .expect("retry after busy re-enqueues and completes");
    assert!(
        !outcome.deduped,
        "the retry must be a fresh job, not a dedupe onto the rejection"
    );
    assert_eq!(outcome.report.to_string(), "{\"schema_version\":1}");

    client.shutdown(Duration::from_secs(5)).expect("drain ack");
    server
        .join_within(Duration::from_secs(30))
        .expect("server exits")
        .expect("clean exit");
}

#[test]
fn panicking_job_returns_an_error_frame_and_the_server_keeps_serving() {
    // The injected runner panics on the marker spec (len == 4242) and
    // otherwise behaves like the real one.
    let server = Server::bind_with_runner(
        ServerConfig::default(),
        Box::new(|spec, engine| {
            assert!(spec.len != 4_242, "injected panic for the marker job");
            run_sweep(spec, engine).to_json()
        }),
    )
    .expect("loopback bind")
    .spawn()
    .expect("spawn");

    let mut client = connect(&server);
    let err = client
        .submit_and_wait(&spec(&[AppId::Kafka], 4_242), None, Duration::from_secs(60))
        .expect_err("marker job panics");
    match err {
        ClientError::Server(message) => assert!(
            message.contains("injected panic"),
            "panic text must reach the client, got {message:?}"
        ),
        other => panic!("expected a server error frame, got {other}"),
    }

    // Same connection and a fresh connection both still work.
    let healthy = spec(&[AppId::Kafka], 800);
    let offline = run_sweep(&healthy, &Engine::new(2)).to_json();
    let outcome = client
        .submit_and_wait(&healthy, None, Duration::from_secs(120))
        .expect("server survived the panic");
    assert_eq!(outcome.report.to_string(), offline);
    let mut second = connect(&server);
    second
        .ping(Duration::from_secs(5))
        .expect("still accepting");

    second.shutdown(Duration::from_secs(5)).expect("drain ack");
    server
        .join_within(Duration::from_secs(30))
        .expect("server exits")
        .expect("clean exit");
}

#[test]
fn shutdown_drains_in_flight_jobs_before_exit() {
    let gate = Arc::new(Gate::default());
    let runner_gate = Arc::clone(&gate);
    let server = Server::bind_with_runner(
        ServerConfig::default(),
        Box::new(move |_spec, _engine| {
            runner_gate.hold();
            "{\"schema_version\":1,\"drained\":true}".to_string()
        }),
    )
    .expect("loopback bind")
    .spawn()
    .expect("spawn");

    // A waiter blocks on a gated job from its own connection.
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(addr, Duration::from_secs(5)).expect("connect");
        c.submit_and_wait(
            &spec(&[AppId::Kafka], 100),
            Some("inflight"),
            Duration::from_secs(60),
        )
    });
    gate.wait_entered(1);

    // Shutdown arrives while the job is mid-run...
    let mut admin = connect(&server);
    admin.shutdown(Duration::from_secs(5)).expect("drain ack");
    // ...new work is now refused...
    let err = admin
        .submit(&spec(&[AppId::Mysql], 100), None, Duration::from_secs(5))
        .expect_err("draining server refuses new work");
    assert!(matches!(err, ClientError::Busy { .. }), "{err}");
    // ...but the in-flight job finishes and its waiter gets the result.
    gate.release();
    let outcome = waiter
        .join()
        .expect("waiter thread exits")
        .expect("in-flight job drains to completion");
    assert_eq!(
        outcome.report.to_string(),
        "{\"schema_version\":1,\"drained\":true}"
    );
    server
        .join_within(Duration::from_secs(30))
        .expect("server exits after the drain")
        .expect("clean exit");
}
