//! End-to-end properties of the representative-interval sampling pipeline
//! (`crates/sample` wired through the sweep harness):
//!
//! * **scheduling invariance** — a sampled sweep is byte-identical at
//!   `--jobs 1`, `--jobs 2` and `--jobs 8`, scaled traces included;
//! * **weights partition the trace** — cluster weights are uop shares that
//!   sum to one;
//! * **piecewise-constant exactness** — when a per-interval metric is
//!   constant within each cluster, the weighted reconstruction equals the
//!   uop-weighted truth exactly (up to float rounding);
//! * **observer neutrality** — attaching a `BbvRecorder` to a frontend must
//!   not change the simulation result in any field.

use uopcache::cache::LruPolicy;
use uopcache::exec::Engine;
use uopcache::model::FrontendConfig;
use uopcache::obs::BbvRecorder;
use uopcache::sample::{SampleConfig, SamplePlan};
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant};
use uopcache_bench::sweep::{run_sweep, SweepSpec};

fn sampled_spec() -> SweepSpec {
    SweepSpec {
        cfg: FrontendConfig::zen3(),
        config_name: "zen3".to_string(),
        apps: vec![AppId::Kafka, AppId::Postgres],
        policies: vec![
            "LRU".to_string(),
            "Random".to_string(),
            "FURBYS".to_string(),
        ],
        variant: 0,
        len: 4_000,
        metrics: false,
        sample: Some(2_000),
        scale: 2,
    }
}

#[test]
fn sampled_sweeps_are_scheduling_invariant() {
    let spec = sampled_spec();
    let serial = run_sweep(&spec, &Engine::new(1)).to_json();
    for jobs in [2usize, 8] {
        let parallel = run_sweep(&spec, &Engine::new(jobs)).to_json();
        assert_eq!(serial, parallel, "jobs=1 vs jobs={jobs} diverged");
    }
    assert!(serial.contains("\"sampled\""));
}

#[test]
fn cluster_weights_partition_the_trace() {
    for app in [AppId::Kafka, AppId::Clang] {
        let trace = build_trace(app, InputVariant(0), 6_000);
        let plan = SamplePlan::build(&trace, &SampleConfig::new(1_500, 0xbeef));
        let weights = plan.weights();
        assert_eq!(weights.len(), plan.k);
        assert!(weights.iter().all(|w| *w > 0.0));
        let total: f64 = weights.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "{}: weights sum to {total}",
            app.name()
        );
        // Each weight is exactly the cluster's uop share.
        let total_uops: u64 = plan.intervals.iter().map(|iv| iv.uops).sum();
        for (c, w) in plan.clusters.iter().zip(&weights) {
            let share = c.uops as f64 / total_uops as f64;
            assert!((share - w).abs() < 1e-12);
        }
    }
}

#[test]
fn piecewise_constant_metrics_reconstruct_exactly() {
    let trace = build_trace(AppId::Postgres, InputVariant(0), 8_000);
    let plan = SamplePlan::build(&trace, &SampleConfig::new(2_000, 0x5eed));

    // Synthetic per-interval metric, constant within each cluster: interval i
    // in cluster c contributes value(c) uops-weighted.
    let value = |c: usize| 0.25 + 0.1 * c as f64;
    let total_uops: u64 = plan.intervals.iter().map(|iv| iv.uops).sum();
    let truth: f64 = plan
        .assignments
        .iter()
        .zip(&plan.intervals)
        .map(|(&c, iv)| value(c) * iv.uops as f64)
        .sum::<f64>()
        / total_uops as f64;

    // The sampled estimate sees only the simulation points — which is enough,
    // because within a cluster every point reads the same value.
    let estimate: f64 = plan
        .clusters
        .iter()
        .enumerate()
        .zip(plan.weights())
        .map(|((c, cluster), w)| {
            let point_mean =
                cluster.points.iter().map(|_| value(c)).sum::<f64>() / cluster.points.len() as f64;
            w * point_mean
        })
        .sum();

    assert!(
        (estimate - truth).abs() < 1e-9,
        "piecewise-constant metric must reconstruct exactly: {estimate} vs {truth}"
    );
}

#[test]
fn bbv_recorder_is_observationally_neutral() {
    let cfg = FrontendConfig::zen3();
    for app in [AppId::Kafka, AppId::Postgres] {
        let trace = build_trace(app, InputVariant(0), 5_000);
        let plain = Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(&trace);

        let mut fe = Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .recorder(BbvRecorder::new(0xb3, 2_000, 32, 4_096))
            .build();
        let recorded = fe.run(&trace);

        assert_eq!(
            plain,
            recorded,
            "{}: BbvRecorder changed the simulation",
            app.name()
        );
        let rec = fe.take_recorder().expect("recorder attached");
        assert!(rec.offered() > 0, "{}: recorder saw no events", app.name());
    }
}
