//! The audit lints the workspace that contains it.
//!
//! Two layers of coverage:
//!
//! 1. **Self-audit** — the full v2 lint (token rules, call-graph
//!    reachability passes, concurrency pass, allowlist hygiene) runs over
//!    the real workspace sources and must report zero non-allowlisted
//!    diagnostics. This is the same run CI diffs against
//!    `tests/golden/audit_clean.json`.
//! 2. **Fixtures** — each graph rule is driven through
//!    [`run_lint_sources`] on known snippets, asserting both that it fires
//!    (with a path trace where the rule promises one) and that the
//!    documented exemptions keep it quiet. The seeded checks mirror the
//!    acceptance criterion: planting an allocation in `PwSet::insert` or a
//!    policy per-access hook must fail the audit at the planted line.
//!
//! [`run_lint_sources`]: uopcache_audit::run_lint_sources

use std::path::{Path, PathBuf};
use uopcache_audit::{diagnostics_json, run_lint, run_lint_sources, Allowlist, Diagnostic};

/// A fixed "today" far from any fixture expiry date.
const TODAY: &str = "2026-08-08";

fn empty_allowlist() -> Allowlist {
    Allowlist::parse("").expect("empty allowlist parses")
}

fn lint_fixture(path: &str, src: &str) -> Vec<Diagnostic> {
    run_lint_sources(
        vec![(PathBuf::from(path), src.to_string())],
        &empty_allowlist(),
        TODAY,
    )
    .diagnostics
}

fn rules_of<'d>(diags: &'d [Diagnostic], rule: &str) -> Vec<&'d Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

/// Walks the workspace sources the same way the audit's own walker does
/// (skipping tests/benches/examples/target), returning workspace-relative
/// paths with their contents.
fn workspace_sources() -> Vec<(PathBuf, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !matches!(name.as_str(), "tests" | "benches" | "examples" | "target") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") && name != "build.rs" {
                let src = std::fs::read_to_string(&path).expect("source file readable");
                let rel = path
                    .strip_prefix(&root)
                    .expect("walked path under the workspace root")
                    .to_path_buf();
                files.push((rel, src));
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

// ---------------------------------------------------------------------------
// Self-audit
// ---------------------------------------------------------------------------

/// The workspace audits clean: this is the single source of truth CI
/// enforces by diffing `audit --json` against the committed golden.
#[test]
fn workspace_audit_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let allowlist =
        Allowlist::load(&root.join("audit.allowlist")).expect("audit.allowlist parses as v2");
    let report = run_lint(&root, &allowlist, &uopcache_audit::today_utc())
        .expect("workspace has sources to lint");
    assert!(
        report.diagnostics.is_empty(),
        "audit found {} problem(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The graph actually covered the workspace — a parser regression that
    // silently dropped most functions would otherwise read as "clean".
    assert!(report.files > 50, "only {} files linted", report.files);
    assert!(
        report.functions > 500,
        "only {} fns parsed",
        report.functions
    );
    assert!(report.edges > 1000, "only {} call edges", report.edges);
}

/// The committed golden is byte-identical to what a clean run emits.
#[test]
fn clean_golden_matches_emitter() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(root.join("tests/golden/audit_clean.json"))
        .expect("committed golden exists");
    assert_eq!(golden, diagnostics_json(&[]));
}

/// The call-graph dump names the kernel's hot spine.
#[test]
fn callgraph_dump_covers_the_kernel() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let graph = uopcache_audit::callgraph_json(&root).expect("graph builds");
    for needle in ["PwSet::insert", "UopCache::lookup", "UopCache::insert"] {
        assert!(graph.contains(needle), "graph dump is missing {needle}");
    }
}

// ---------------------------------------------------------------------------
// Seeded acceptance checks (the ISSUE's falsifiability criterion)
// ---------------------------------------------------------------------------

/// Planting a `Vec` push into the real `PwSet::insert` fails the audit at
/// the planted line, with a path trace from the hot-path root.
#[test]
fn seeded_alloc_in_pwset_insert_is_caught() {
    let mut sources = workspace_sources();
    let pwset = sources
        .iter_mut()
        .find(|(p, _)| p.ends_with(Path::new("cache/src/pwset.rs")))
        .expect("pwset.rs in the walked sources");
    let sig = "pub fn insert(&mut self, desc: PwDesc, entries: u32, now: u64) -> PwMeta {";
    assert!(pwset.1.contains(sig), "PwSet::insert signature moved");
    pwset.1 = pwset.1.replace(
        sig,
        "pub fn insert(&mut self, desc: PwDesc, entries: u32, now: u64) -> PwMeta {\n        \
         let mut seeded: Vec<u64> = Vec::new();\n        seeded.push(now);",
    );
    let report = run_lint_sources(sources, &empty_allowlist(), TODAY);
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "hot-path-alloc" && d.file.ends_with(Path::new("pwset.rs")))
        .collect();
    assert!(
        !hits.is_empty(),
        "seeded Vec push in PwSet::insert not caught"
    );
    assert!(
        hits.iter().any(|d| d.message.contains("`PwSet::insert`")),
        "diagnostic lacks a path trace: {hits:?}"
    );
}

/// Planting a `HashMap::new()` into a real policy per-access hook fails
/// the audit (both the reachability proof and the determinism rule).
#[test]
fn seeded_hashmap_in_policy_hook_is_caught() {
    let mut sources = workspace_sources();
    let fifo = sources
        .iter_mut()
        .find(|(p, _)| p.ends_with(Path::new("policies/src/fifo.rs")))
        .expect("fifo.rs in the walked sources");
    let sig = "fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}";
    assert!(
        fifo.1.contains(sig),
        "FifoPolicy::on_insert signature moved"
    );
    fifo.1 = fifo.1.replace(
        sig,
        "fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {\n        \
         let _m: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();\n    }",
    );
    let report = run_lint_sources(sources, &empty_allowlist(), TODAY);
    let in_fifo = |rule: &str| {
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.file.ends_with(Path::new("fifo.rs")))
    };
    assert!(in_fifo("hot-path-alloc"), "HashMap::new in hook not proven");
    assert!(in_fifo("no-std-hashmap"), "std HashMap in policies allowed");
}

// ---------------------------------------------------------------------------
// Alloc-reachability fixtures
// ---------------------------------------------------------------------------

#[test]
fn hot_path_alloc_fires_through_a_callee_with_a_trace() {
    let diags = lint_fixture(
        "crates/cache/src/fixture.rs",
        r#"
struct S { scratch: Vec<u64> }
impl S {
    // audit:hot-path — fixture root
    fn hot(&mut self) { self.helper(); }
    fn helper(&mut self) { self.scratch.push(1); }
}
"#,
    );
    let hits = rules_of(&diags, "hot-path-alloc");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(
        hits[0].message.contains("`S::hot` → `S::helper`"),
        "missing call path: {}",
        hits[0].message
    );
}

#[test]
fn prepare_time_allocation_stays_clean() {
    let diags = lint_fixture(
        "crates/policies/src/fixture.rs",
        r#"
struct FixPolicy { table: Vec<u64> }
impl PwReplacementPolicy for FixPolicy {
    fn prepare(&mut self, sets: usize) {
        self.table = Vec::with_capacity(sets);
        self.table.push(0);
    }
    fn on_insert(&mut self, _set: usize) { self.tick(); }
}
impl FixPolicy {
    fn tick(&mut self) { self.table[0] += 1; }
}
"#,
    );
    assert!(
        rules_of(&diags, "hot-path-alloc").is_empty(),
        "prepare()-time allocation was flagged: {diags:?}"
    );
}

#[test]
fn alloc_exempt_marker_excuses_a_root() {
    let diags = lint_fixture(
        "crates/cache/src/fixture.rs",
        r#"
struct W { log: Vec<u64> }
impl PwReplacementPolicy for W {
    // audit:alloc-exempt — diagnostic wrapper, never on the timed path
    fn on_insert(&mut self, set: usize) { self.log.push(set as u64); }
}
"#,
    );
    assert!(
        rules_of(&diags, "hot-path-alloc").is_empty(),
        "alloc-exempt marker ignored: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Determinism fixtures
// ---------------------------------------------------------------------------

#[test]
fn std_hashmap_flagged_in_deterministic_crates_only() {
    let src = "use std::collections::HashMap;\nfn f() -> HashMap<u64, u64> { HashMap::new() }\n";
    let det = lint_fixture("crates/policies/src/fixture.rs", src);
    assert!(
        !rules_of(&det, "no-std-hashmap").is_empty(),
        "std HashMap allowed in a deterministic crate: {det:?}"
    );
    let serve = lint_fixture("crates/serve/src/fixture.rs", src);
    assert!(
        rules_of(&serve, "no-std-hashmap").is_empty(),
        "serve (SipHash for untrusted ids is deliberate) was flagged: {serve:?}"
    );
}

#[test]
fn ambient_time_flagged_outside_the_clock_seam() {
    let src = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    let core = lint_fixture("crates/core/src/fixture.rs", src);
    assert!(
        !rules_of(&core, "no-ambient-time").is_empty(),
        "Instant::now allowed outside the Clock seam: {core:?}"
    );
    let clock = lint_fixture("crates/exec/src/clock.rs", src);
    assert!(
        rules_of(&clock, "no-ambient-time").is_empty(),
        "the Clock seam itself was flagged: {clock:?}"
    );
}

#[test]
fn unordered_emission_fires_without_a_sort_and_not_with_one() {
    let unsorted = r#"
struct E { m: FastHashMap<u64, u64> }
impl E {
    fn to_json(&self) -> usize {
        let mut n = 0;
        for (_k, v) in self.m.iter() { n += *v as usize; }
        n
    }
}
"#;
    let diags = lint_fixture("crates/obs/src/fixture.rs", unsorted);
    assert!(
        !rules_of(&diags, "unordered-emission").is_empty(),
        "hash-ordered iteration feeding to_json not flagged: {diags:?}"
    );
    let sorted = r#"
struct E { m: FastHashMap<u64, u64> }
impl E {
    fn to_json(&self) -> u64 {
        let mut keys: Vec<u64> = self.m.keys().copied().collect();
        keys.sort_unstable();
        keys[0]
    }
}
"#;
    let diags = lint_fixture("crates/obs/src/fixture.rs", sorted);
    assert!(
        rules_of(&diags, "unordered-emission").is_empty(),
        "sorted emission still flagged: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Concurrency fixtures
// ---------------------------------------------------------------------------

#[test]
fn inconsistent_lock_order_is_reported() {
    let diags = lint_fixture(
        "crates/serve/src/fixture.rs",
        r#"
fn forward(alpha: &M, beta: &M) {
    let ga = lock_clean(alpha);
    let gb = lock_clean(beta);
    drop(gb);
    drop(ga);
}
fn backward(alpha: &M, beta: &M) {
    let gb = lock_clean(beta);
    let ga = lock_clean(alpha);
    drop(ga);
    drop(gb);
}
"#,
    );
    assert!(
        !rules_of(&diags, "lock-order").is_empty(),
        "A→B vs B→A acquisition not reported: {diags:?}"
    );
}

#[test]
fn lock_reacquisition_is_a_self_deadlock() {
    let diags = lint_fixture(
        "crates/exec/src/fixture.rs",
        r#"
fn twice(gamma: &M) {
    let g1 = lock_clean(gamma);
    let g2 = lock_clean(gamma);
    drop(g2);
    drop(g1);
}
"#,
    );
    let hits = rules_of(&diags, "lock-order");
    assert!(
        hits.iter().any(|d| d.message.contains("re-acquired")),
        "self-deadlock not reported: {diags:?}"
    );
}

#[test]
fn channel_ops_under_a_guard_are_reported_and_drop_clears_it() {
    let held = r#"
fn publish(jobs: &M, tx: &Sender) {
    let g = lock_clean(jobs);
    tx.send(1);
    drop(g);
}
"#;
    let diags = lint_fixture("crates/serve/src/fixture.rs", held);
    assert!(
        !rules_of(&diags, "lock-across-channel").is_empty(),
        "send under a live guard not reported: {diags:?}"
    );
    let released = r#"
fn publish(jobs: &M, tx: &Sender) {
    let g = lock_clean(jobs);
    drop(g);
    tx.send(1);
}
"#;
    let diags = lint_fixture("crates/serve/src/fixture.rs", released);
    assert!(
        rules_of(&diags, "lock-across-channel").is_empty(),
        "send after drop(guard) still flagged: {diags:?}"
    );
}

#[test]
fn sleeps_and_joins_under_a_guard_are_reported() {
    let paused = r#"
fn tick(state: &M) {
    let g = lock_clean(state);
    std::thread::sleep(POLL);
    drop(g);
}
fn reap(state: &M, handle: H) {
    let g = lock_clean(state);
    handle.join();
    drop(g);
}
"#;
    let diags = lint_fixture("crates/serve/src/fixture.rs", paused);
    let hits = rules_of(&diags, "blocking-under-lock");
    assert_eq!(hits.len(), 2, "{diags:?}");
    assert!(hits.iter().any(|d| d.message.contains("`sleep(..)`")));
    assert!(hits.iter().any(|d| d.message.contains("`join(..)`")));

    // Released first — and the Condvar idiom, which consumes its guard
    // atomically — are both fine.
    let released = r#"
fn tick(state: &M) {
    let g = lock_clean(state);
    drop(g);
    std::thread::sleep(POLL);
}
fn park(state: &M, cv: &Condvar) {
    let mut g = lock_clean(state);
    let (guard, _timed_out) = cv.wait_timeout(g, POLL).unwrap_or_else(|p| p.into_inner());
    g = guard;
    drop(g);
}
"#;
    let diags = lint_fixture("crates/serve/src/fixture.rs", released);
    assert!(
        rules_of(&diags, "blocking-under-lock").is_empty(),
        "released or Condvar-parked pauses must not be flagged: {diags:?}"
    );
}

#[test]
fn unmarked_spawns_are_flagged_and_spawn_site_marker_accounts_them() {
    let diags = lint_fixture(
        "crates/serve/src/fixture.rs",
        r#"
fn boot() { std::thread::spawn(worker); }
// audit:spawn-site — joined in shutdown()
fn boot_accounted() { std::thread::spawn(worker); }
fn worker() {}
"#,
    );
    let hits = rules_of(&diags, "unaccounted-spawn");
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert!(
        hits[0].message.contains("`boot`"),
        "wrong spawn flagged: {}",
        hits[0].message
    );
}

// ---------------------------------------------------------------------------
// Allowlist hygiene fixtures
// ---------------------------------------------------------------------------

#[test]
fn allowlist_entries_require_a_reason() {
    assert!(Allowlist::parse("no-unwrap foo.rs").is_err());
    assert!(Allowlist::parse("no-unwrap foo.rs reason:").is_err());
    assert!(Allowlist::parse("no-unwrap foo.rs reason: legacy shim").is_ok());
}

#[test]
fn expired_and_unmatched_entries_surface_as_stale() {
    let allow = Allowlist::parse(
        "no-unwrap nowhere.rs reason: remembers a file that is gone\n\
         no-float-eq also_nowhere.rs reason: temporary expires: 2020-01-01\n",
    )
    .expect("entries are well-formed");
    let report = run_lint_sources(
        vec![(
            PathBuf::from("crates/model/src/fixture.rs"),
            "fn f() {}\n".to_string(),
        )],
        &allow,
        TODAY,
    );
    let stale = rules_of(&report.diagnostics, "stale-allowlist");
    assert_eq!(stale.len(), 2, "{:?}", report.diagnostics);
}
