//! Property-style invariants over the cache substrate and every replacement
//! policy: capacity is never exceeded, the books always balance, a single-set
//! cache has no conflict misses, and offline oracles respect their bounds.
//!
//! Each property runs many rounds of seeded-PRNG trace generation (the
//! workspace's deterministic [`Prng`]), so failures reproduce exactly from
//! the printed round number. Every policy is driven through
//! [`CheckedPolicy`], the `strict-invariants` conformance wrapper, so any
//! violation of the replacement-policy contract panics at the offending hook.

use uopcache::cache::checked::verify_stats;
use uopcache::cache::{CheckedPolicy, LruPolicy, PwReplacementPolicy, UopCache};
use uopcache::core::{FurbysPolicy, HintMap};
use uopcache::model::rng::{Prng, Rng};
use uopcache::model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination, UopCacheConfig};
use uopcache::offline::BeladyPolicy;
use uopcache::policies::{
    run_trace, FifoPolicy, GhrpPolicy, MockingjayPolicy, RandomPolicy, ShipPlusPlusPolicy,
    SrripPolicy, ThermometerPolicy,
};

fn small_cfg(entries: u32, ways: u32) -> UopCacheConfig {
    UopCacheConfig {
        entries,
        ways,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: ways.min(4),
    }
}

/// A short trace over a small address universe with variable uop counts (so
/// multi-entry PWs and overlapping windows both occur).
fn random_trace(rng: &mut Prng, max_len: usize) -> LookupTrace {
    let len = rng.gen_range(1..max_len.max(2));
    (0..len)
        .map(|_| {
            let slot = rng.gen_range(0..24u64);
            let uops = rng.gen_range(1..28u32);
            let start = 0x1000 + slot * 64;
            PwAccess::new(PwDesc::new(
                Addr::new(start),
                uops,
                uops * 3,
                PwTermination::TakenBranch,
            ))
        })
        .collect()
}

/// Every policy under test, each wrapped in the conformance checker. The
/// nine online policies plus the Belady oracle.
fn policies_under_test(trace: &LookupTrace, ways: u32) -> Vec<Box<dyn PwReplacementPolicy>> {
    let mut hints = HintMap::new(3);
    hints.set(Addr::new(0x1000), 7);
    hints.set(Addr::new(0x1040), 3);
    let rates = uopcache::model::hash::FastHashMap::from_iter([
        (Addr::new(0x1000), 0.9),
        (Addr::new(0x1080), 0.4),
        (Addr::new(0x10c0), 0.05),
    ]);
    let bare: Vec<Box<dyn PwReplacementPolicy>> = vec![
        Box::new(LruPolicy::new()),
        Box::new(FifoPolicy::new()),
        Box::new(RandomPolicy::new(99)),
        Box::new(SrripPolicy::new()),
        Box::new(ShipPlusPlusPolicy::new()),
        Box::new(GhrpPolicy::new()),
        Box::new(MockingjayPolicy::new()),
        Box::new(ThermometerPolicy::from_hit_rates(&rates)),
        Box::new(FurbysPolicy::new(hints)),
        Box::new(BeladyPolicy::from_trace(trace)),
    ];
    bare.into_iter()
        .map(|p| Box::new(CheckedPolicy::new(p, ways)) as Box<dyn PwReplacementPolicy>)
        .collect()
}

#[test]
fn occupancy_and_books_hold_for_every_policy() {
    let mut rng = Prng::seed_from_u64(0xC0FFEE);
    for round in 0..48 {
        let trace = random_trace(&mut rng, 120);
        let cfg = small_cfg(8, 4);
        for policy in policies_under_test(&trace, cfg.ways) {
            let name = policy.name();
            let mut cache = UopCache::new(cfg, policy);
            let stats = run_trace(&mut cache, &trace);
            assert!(
                cache.occupied_entries() <= cfg.entries,
                "round {round} {name}: overfull"
            );
            assert_eq!(stats.lookups, trace.len() as u64, "round {round} {name}");
            verify_stats(&stats);
        }
    }
}

#[test]
fn single_set_cache_has_no_conflict_misses() {
    // entries == ways: fully associative; the 3C classifier must report
    // zero conflict misses.
    let mut rng = Prng::seed_from_u64(0xBEEF);
    for round in 0..48 {
        let trace = random_trace(&mut rng, 100);
        let cfg = small_cfg(8, 8);
        let mut cache = UopCache::new(
            cfg,
            Box::new(CheckedPolicy::new(LruPolicy::new(), cfg.ways)),
        );
        cache.enable_classification();
        let stats = run_trace(&mut cache, &trace);
        assert_eq!(stats.conflict_miss_uops, 0, "round {round}: {stats:?}");
        assert_eq!(
            stats.cold_miss_uops + stats.capacity_miss_uops + stats.conflict_miss_uops,
            stats.uops_missed,
            "round {round}"
        );
    }
}

#[test]
fn resident_window_is_always_the_largest_seen_since_eviction() {
    // The upgrade path must keep the larger of two overlapping windows.
    // 4 sets x 64 ways: at most 6 starts x 4 entries per set, so nothing
    // is ever evicted.
    let mut rng = Prng::seed_from_u64(0xFACE);
    for round in 0..48 {
        let trace = random_trace(&mut rng, 80);
        let cfg = small_cfg(256, 64);
        let mut cache = UopCache::new(
            cfg,
            Box::new(CheckedPolicy::new(LruPolicy::new(), cfg.ways)),
        );
        let mut max_seen: std::collections::HashMap<Addr, u32> = Default::default();
        for access in trace.iter() {
            let result = cache.lookup(&access.pw);
            if !result.is_full_hit() {
                cache.insert(&access.pw);
            }
            let cacheable = access.pw.entries(cfg.uops_per_entry) <= cfg.max_entries_per_pw;
            if cacheable {
                let e = max_seen.entry(access.pw.start).or_insert(0);
                *e = (*e).max(access.pw.uops);
                assert_eq!(
                    cache.resident_uops(access.pw.start),
                    Some(*e),
                    "round {round}: largest window must be resident"
                );
            }
        }
    }
}

#[test]
fn belady_never_loses_to_fifo_badly() {
    // A weak-but-universal bound: the oracle is never *worse* than FIFO
    // by more than the cost of one window (tie noise on tiny traces).
    let mut rng = Prng::seed_from_u64(0xDEAD);
    for round in 0..48 {
        let trace = random_trace(&mut rng, 150);
        let cfg = small_cfg(8, 4);
        let mut fifo = UopCache::new(
            cfg,
            Box::new(CheckedPolicy::new(FifoPolicy::new(), cfg.ways)),
        );
        let fifo_stats = run_trace(&mut fifo, &trace);
        let mut bel = UopCache::new(
            cfg,
            Box::new(CheckedPolicy::new(
                BeladyPolicy::from_trace(&trace),
                cfg.ways,
            )),
        );
        let bel_stats = run_trace(&mut bel, &trace);
        assert!(
            bel_stats.uops_missed <= fifo_stats.uops_missed + 28,
            "round {round}: belady {} vs fifo {}",
            bel_stats.uops_missed,
            fifo_stats.uops_missed
        );
    }
}

#[test]
fn furbys_bypass_never_fires_with_free_space() {
    let mut rng = Prng::seed_from_u64(0xF00D);
    for round in 0..48 {
        let trace = random_trace(&mut rng, 60);
        let cfg = small_cfg(64, 8);
        let mut hints = HintMap::new(3);
        for i in 0..24u64 {
            hints.set(Addr::new(0x1000 + i * 64), (i % 8) as u8);
        }
        let mut cache = UopCache::new(
            cfg,
            Box::new(CheckedPolicy::new(FurbysPolicy::new(hints), cfg.ways)),
        );
        let stats = run_trace(&mut cache, &trace);
        assert!(stats.bypasses <= stats.lookups, "round {round}");
    }
}

#[test]
fn slot_recycling_survives_heavy_eviction_churn() {
    // Regression test for PwSet slot recycling: a single-set cache under
    // constant eviction pressure reuses freed slot ids on nearly every
    // insertion. The CheckedPolicy wrapper verifies each reuse is preceded
    // by an eviction and that slot ids never alias two live windows.
    let mut rng = Prng::seed_from_u64(0x51075);
    let cfg = small_cfg(4, 4); // one set, four entry slots
    let mut cache = UopCache::new(
        cfg,
        Box::new(CheckedPolicy::new(LruPolicy::new(), cfg.ways)),
    );
    for _ in 0..2_000 {
        let slot = rng.gen_range(0..12u64);
        let uops = rng.gen_range(1..28u32);
        let pw = PwDesc::new(
            Addr::new(0x1000 + slot * 64),
            uops,
            uops * 3,
            PwTermination::TakenBranch,
        );
        if !cache.lookup(&pw).is_full_hit() {
            cache.insert(&pw);
        }
        assert!(cache.occupied_entries() <= cfg.entries);
    }
    verify_stats(cache.stats());
}

#[test]
fn policies_under_test_have_distinct_names() {
    let trace: LookupTrace = std::iter::once(PwAccess::new(PwDesc::new(
        Addr::new(0x1000),
        4,
        12,
        PwTermination::TakenBranch,
    )))
    .collect();
    let names: Vec<&str> = policies_under_test(&trace, 4)
        .iter()
        .map(|p| p.name())
        .collect();
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "{names:?}");
}
