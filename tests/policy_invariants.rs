//! Property-based invariants over the cache substrate and every replacement
//! policy: capacity is never exceeded, the books always balance, a single-set
//! cache has no conflict misses, and offline oracles respect their bounds.

use proptest::prelude::*;
use uopcache::cache::{LruPolicy, PwReplacementPolicy, UopCache};
use uopcache::core::{FurbysPolicy, HintMap};
use uopcache::model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination, UopCacheConfig};
use uopcache::offline::BeladyPolicy;
use uopcache::policies::{
    run_trace, FifoPolicy, GhrpPolicy, MockingjayPolicy, RandomPolicy, ShipPlusPlusPolicy,
    SrripPolicy, ThermometerPolicy,
};

fn small_cfg(entries: u32, ways: u32) -> UopCacheConfig {
    UopCacheConfig {
        entries,
        ways,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: ways.min(4),
    }
}

/// Strategy: a short trace over a small address universe with variable uop
/// counts (so multi-entry PWs and overlapping windows both occur).
fn trace_strategy(max_len: usize) -> impl Strategy<Value = LookupTrace> {
    prop::collection::vec((0u64..24, 1u32..28), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(slot, uops)| {
                let start = 0x1000 + slot * 64;
                PwAccess::new(PwDesc::new(
                    Addr::new(start),
                    uops,
                    uops * 3,
                    PwTermination::TakenBranch,
                ))
            })
            .collect()
    })
}

fn policies_under_test(trace: &LookupTrace) -> Vec<Box<dyn PwReplacementPolicy>> {
    let mut hints = HintMap::new(3);
    hints.set(Addr::new(0x1000), 7);
    hints.set(Addr::new(0x1040), 3);
    let rates = std::collections::HashMap::from([
        (Addr::new(0x1000), 0.9),
        (Addr::new(0x1080), 0.4),
        (Addr::new(0x10c0), 0.05),
    ]);
    vec![
        Box::new(LruPolicy::new()),
        Box::new(FifoPolicy::new()),
        Box::new(RandomPolicy::new(99)),
        Box::new(SrripPolicy::new()),
        Box::new(ShipPlusPlusPolicy::new()),
        Box::new(GhrpPolicy::new()),
        Box::new(MockingjayPolicy::new()),
        Box::new(ThermometerPolicy::from_hit_rates(&rates)),
        Box::new(FurbysPolicy::new(hints)),
        Box::new(BeladyPolicy::from_trace(trace)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn occupancy_and_books_hold_for_every_policy(trace in trace_strategy(120)) {
        let cfg = small_cfg(8, 4);
        for policy in policies_under_test(&trace) {
            let name = policy.name();
            let mut cache = UopCache::new(cfg, policy);
            let stats = run_trace(&mut cache, &trace);
            prop_assert!(cache.occupied_entries() <= cfg.entries, "{name}: overfull");
            prop_assert_eq!(stats.lookups, trace.len() as u64, "{}", name);
            prop_assert_eq!(
                stats.uops_hit + stats.uops_missed, stats.uops_requested, "{}", name
            );
            prop_assert_eq!(
                stats.lookups,
                stats.pw_hits + stats.pw_partial_hits + stats.pw_misses,
                "{}", name
            );
        }
    }

    #[test]
    fn single_set_cache_has_no_conflict_misses(trace in trace_strategy(100)) {
        // entries == ways: fully associative; the 3C classifier must report
        // zero conflict misses.
        let cfg = small_cfg(8, 8);
        let mut cache = UopCache::new(cfg, Box::new(LruPolicy::new()));
        cache.enable_classification();
        let stats = run_trace(&mut cache, &trace);
        prop_assert_eq!(stats.conflict_miss_uops, 0, "{:?}", stats);
        prop_assert_eq!(
            stats.cold_miss_uops + stats.capacity_miss_uops + stats.conflict_miss_uops,
            stats.uops_missed
        );
    }

    #[test]
    fn resident_window_is_always_the_largest_seen_since_eviction(
        trace in trace_strategy(80)
    ) {
        // The upgrade path must keep the larger of two overlapping windows.
        // 4 sets x 64 ways: at most 6 starts x 4 entries per set, so nothing
        // is ever evicted.
        let cfg = small_cfg(256, 64);
        let mut cache = UopCache::new(cfg, Box::new(LruPolicy::new()));
        let mut max_seen: std::collections::HashMap<Addr, u32> = Default::default();
        for access in trace.iter() {
            let result = cache.lookup(&access.pw);
            if !result.is_full_hit() {
                cache.insert(&access.pw);
            }
            let cacheable = access.pw.entries(cfg.uops_per_entry) <= cfg.max_entries_per_pw;
            if cacheable {
                let e = max_seen.entry(access.pw.start).or_insert(0);
                *e = (*e).max(access.pw.uops);
                prop_assert_eq!(
                    cache.resident_uops(access.pw.start),
                    Some(*e),
                    "largest window must be resident"
                );
            }
        }
    }

    #[test]
    fn belady_never_loses_to_fifo_badly(trace in trace_strategy(150)) {
        // A weak-but-universal bound: the oracle is never *worse* than FIFO
        // by more than the cost of one window (tie noise on tiny traces).
        let cfg = small_cfg(8, 4);
        let mut fifo = UopCache::new(cfg, Box::new(FifoPolicy::new()));
        let fifo_stats = run_trace(&mut fifo, &trace);
        let mut bel = UopCache::new(cfg, Box::new(BeladyPolicy::from_trace(&trace)));
        let bel_stats = run_trace(&mut bel, &trace);
        prop_assert!(
            bel_stats.uops_missed <= fifo_stats.uops_missed + 28,
            "belady {} vs fifo {}",
            bel_stats.uops_missed,
            fifo_stats.uops_missed
        );
    }

    #[test]
    fn furbys_bypass_never_fires_with_free_space(trace in trace_strategy(60)) {
        let cfg = small_cfg(64, 8);
        let mut hints = HintMap::new(3);
        for i in 0..24u64 {
            hints.set(Addr::new(0x1000 + i * 64), (i % 8) as u8);
        }
        let mut cache = UopCache::new(cfg, Box::new(FurbysPolicy::new(hints)));
        let stats = run_trace(&mut cache, &trace);
        // 24 distinct starts x <=4 entries each <= 96... use a cache large
        // enough that sets never fill: 8 sets x 8 ways with <=3 starts per
        // set and <=4 entries per PW can still overflow; so just assert the
        // sane direction: bypasses only happen when something was resident.
        prop_assert!(stats.bypasses <= stats.lookups);
    }
}

#[test]
fn policies_under_test_have_distinct_names() {
    let trace: LookupTrace = std::iter::once(PwAccess::new(PwDesc::new(
        Addr::new(0x1000),
        4,
        12,
        PwTermination::TakenBranch,
    )))
    .collect();
    let names: Vec<&str> = policies_under_test(&trace).iter().map(|p| p.name()).collect();
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "{names:?}");
}
