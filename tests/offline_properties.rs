//! Property-style checks of the offline machinery: the FOO flow solution is
//! feasible and consistent, replay honours it, and Jenks natural breaks is
//! optimal against brute force on small inputs.
//!
//! Random inputs come from the workspace's deterministic seeded [`Prng`], so
//! any failure reproduces exactly from the printed round number.

use uopcache::core::jenks::{classify, jenks_breaks};
use uopcache::model::rng::{Prng, Rng};
use uopcache::model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination, UopCacheConfig};
use uopcache::offline::{foo, replay, EvictionTiming, FooConfig};

fn tiny_cfg() -> UopCacheConfig {
    UopCacheConfig {
        entries: 4,
        ways: 2,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: 2,
    }
}

fn random_trace(rng: &mut Prng, max_len: usize) -> LookupTrace {
    let len = rng.gen_range(1..max_len.max(2));
    (0..len)
        .map(|_| {
            let slot = rng.gen_range(0..12u64);
            let uops = rng.gen_range(1..16u32);
            PwAccess::new(PwDesc::new(
                Addr::new(0x2000 + slot * 64),
                uops,
                uops * 3,
                PwTermination::TakenBranch,
            ))
        })
        .collect()
}

/// Per-set occupancy implied by the keep decisions must never exceed the
/// set's capacity at any point in time.
fn check_feasible(trace: &LookupTrace, cfg: &UopCacheConfig, sol: &foo::FooSolution) -> bool {
    use std::collections::HashMap;
    // For each kept interval [i, j): the window of access i occupies
    // entries(i) in its set from i to the next access of the same start.
    let accesses = trace.accesses();
    let mut next_same: Vec<Option<usize>> = vec![None; accesses.len()];
    let mut last: HashMap<Addr, usize> = HashMap::new();
    for (i, a) in accesses.iter().enumerate().rev() {
        next_same[i] = last.get(&a.pw.start).copied();
        last.insert(a.pw.start, i);
    }
    // Sweep: per set, track active kept intervals.
    let mut load_delta: HashMap<(usize, usize), i64> = HashMap::new(); // (set, time) -> delta
    for (i, a) in accesses.iter().enumerate() {
        if sol.keep[i] {
            if let Some(j) = next_same[i] {
                let set = cfg.set_index_for(a.pw.start, 64);
                let e = i64::from(a.pw.entries(cfg.uops_per_entry));
                *load_delta.entry((set, i)).or_insert(0) += e;
                *load_delta.entry((set, j)).or_insert(0) -= e;
            }
        }
    }
    for set in 0..cfg.sets() as usize {
        let mut load = 0i64;
        for t in 0..accesses.len() {
            load += load_delta.get(&(set, t)).copied().unwrap_or(0);
            if load > i64::from(cfg.ways) {
                return false;
            }
        }
    }
    true
}

#[test]
fn foo_solutions_are_capacity_feasible() {
    let mut rng = Prng::seed_from_u64(0xF1A6);
    for round in 0..64 {
        let trace = random_trace(&mut rng, 60);
        let cfg = tiny_cfg();
        for foo_cfg in [
            FooConfig::foo_ohr(),
            FooConfig::foo_bhr(),
            FooConfig::flack(),
        ] {
            let sol = foo::solve(&trace, &cfg, &foo_cfg);
            assert_eq!(sol.keep.len(), trace.len(), "round {round}");
            assert_eq!(sol.expected_hit.len(), trace.len(), "round {round}");
            assert!(
                check_feasible(&trace, &cfg, &sol),
                "round {round}: {foo_cfg:?}"
            );
        }
    }
}

#[test]
fn expected_hits_never_precede_a_keep() {
    // Every expected hit must be the target of some kept interval: the
    // count of expected hits equals the count of keeps whose window is
    // re-accessed.
    let mut rng = Prng::seed_from_u64(0x0F0F);
    for round in 0..64 {
        let trace = random_trace(&mut rng, 60);
        let cfg = tiny_cfg();
        let sol = foo::solve(&trace, &cfg, &FooConfig::foo_ohr());
        assert_eq!(
            sol.expected_hit.iter().filter(|&&h| h).count(),
            sol.kept_count(),
            "round {round}"
        );
        // The first access of any start address can never be an expected hit.
        let mut seen = std::collections::HashSet::new();
        for (i, a) in trace.iter().enumerate() {
            if seen.insert(a.pw.start) {
                assert!(
                    !sol.expected_hit[i],
                    "round {round}: first touch flagged as hit"
                );
            }
        }
    }
}

#[test]
fn replay_achieves_expected_hits_in_exact_mode() {
    // In ExactWindow mode with eager replay, every expected hit the
    // solver promises is realised by the replayed cache (the per-set
    // formulation makes decisions enforceable).
    let mut rng = Prng::seed_from_u64(0xE4A7);
    for round in 0..64 {
        let trace = random_trace(&mut rng, 50);
        let cfg = tiny_cfg();
        let sol = foo::solve(&trace, &cfg, &FooConfig::foo_ohr());
        let stats = replay::replay(&trace, &cfg, &sol, EvictionTiming::Eager);
        let expected: u64 = sol.expected_hit.iter().filter(|&&h| h).count() as u64;
        assert!(
            stats.pw_hits + stats.pw_partial_hits >= expected,
            "round {round}: promised {} hits, achieved {} (+{} partial)",
            expected,
            stats.pw_hits,
            stats.pw_partial_hits
        );
    }
}

#[test]
fn lazy_replay_never_misses_more_than_eager() {
    let mut rng = Prng::seed_from_u64(0x1A2B);
    for round in 0..64 {
        let trace = random_trace(&mut rng, 80);
        let cfg = tiny_cfg();
        let sol = foo::solve(&trace, &cfg, &FooConfig::flack());
        let eager = replay::replay(&trace, &cfg, &sol, EvictionTiming::Eager);
        let lazy = replay::replay(&trace, &cfg, &sol, EvictionTiming::Lazy);
        assert!(lazy.uops_missed <= eager.uops_missed, "round {round}");
    }
}

#[test]
fn jenks_breaks_are_sorted_and_cover() {
    let mut rng = Prng::seed_from_u64(0x9E4B);
    for round in 0..64 {
        let n = rng.gen_range(1..40usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
        let breaks = jenks_breaks(&values, 8);
        assert!(
            breaks.windows(2).all(|w| w[0] < w[1]),
            "round {round}: {breaks:?}"
        );
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        assert_eq!(
            *breaks.last().expect("nonempty breaks"),
            max,
            "round {round}"
        );
        for &v in &values {
            let c = classify(v, &breaks);
            assert!(c < breaks.len(), "round {round}");
            assert!(v <= breaks[c] + 1e-12, "round {round}");
        }
    }
}

#[test]
fn jenks_matches_brute_force_on_small_inputs() {
    let mut rng = Prng::seed_from_u64(0xB4F3);
    for round in 0..64 {
        let n = rng.gen_range(2..8usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
        let classes = rng.gen_range(2..4usize);
        let breaks = jenks_breaks(&values, classes);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        sorted.dedup();
        let k = classes.min(sorted.len());
        // Brute force: all ways to cut `sorted` into k contiguous groups.
        fn ssd(xs: &[f64]) -> f64 {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum()
        }
        fn best(xs: &[f64], k: usize) -> f64 {
            if k == 1 || xs.len() <= 1 {
                return if k >= 1 { ssd(xs) } else { f64::INFINITY };
            }
            let mut b = f64::INFINITY;
            for cut in 1..=xs.len() - (k - 1) {
                let cand = ssd(&xs[..cut]) + best(&xs[cut..], k - 1);
                if cand < b {
                    b = cand;
                }
            }
            b
        }
        let optimal = best(&sorted, k);
        // Recompute the SSD the returned breaks induce.
        let mut total = 0.0;
        let mut lo = 0usize;
        for &b in &breaks {
            let hi = sorted.iter().position(|&x| x > b).unwrap_or(sorted.len());
            if hi > lo {
                total += ssd(&sorted[lo..hi]);
            }
            lo = hi;
        }
        assert!(
            total <= optimal + 1e-9,
            "round {round}: jenks {total} vs optimal {optimal}"
        );
    }
}
