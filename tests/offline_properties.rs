//! Property-based checks of the offline machinery: the FOO flow solution is
//! feasible and consistent, replay honours it, and Jenks natural breaks is
//! optimal against brute force on small inputs.

use proptest::prelude::*;
use uopcache::core::jenks::{classify, jenks_breaks};
use uopcache::model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination, UopCacheConfig};
use uopcache::offline::{foo, replay, EvictionTiming, FooConfig};

fn tiny_cfg() -> UopCacheConfig {
    UopCacheConfig {
        entries: 4,
        ways: 2,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: 2,
    }
}

fn trace_strategy(max_len: usize) -> impl Strategy<Value = LookupTrace> {
    prop::collection::vec((0u64..12, 1u32..16), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(slot, uops)| {
                PwAccess::new(PwDesc::new(
                    Addr::new(0x2000 + slot * 64),
                    uops,
                    uops * 3,
                    PwTermination::TakenBranch,
                ))
            })
            .collect()
    })
}

/// Per-set occupancy implied by the keep decisions must never exceed the
/// set's capacity at any point in time.
fn check_feasible(trace: &LookupTrace, cfg: &UopCacheConfig, sol: &foo::FooSolution) -> bool {
    use std::collections::HashMap;
    // For each kept interval [i, j): the window of access i occupies
    // entries(i) in its set from i to the next access of the same start.
    let accesses = trace.accesses();
    let mut next_same: Vec<Option<usize>> = vec![None; accesses.len()];
    let mut last: HashMap<Addr, usize> = HashMap::new();
    for (i, a) in accesses.iter().enumerate().rev() {
        next_same[i] = last.get(&a.pw.start).copied();
        last.insert(a.pw.start, i);
    }
    // Sweep: per set, track active kept intervals.
    let mut load_delta: HashMap<(usize, usize), i64> = HashMap::new(); // (set, time) -> delta
    for (i, a) in accesses.iter().enumerate() {
        if sol.keep[i] {
            if let Some(j) = next_same[i] {
                let set = cfg.set_index_for(a.pw.start, 64);
                let e = i64::from(a.pw.entries(cfg.uops_per_entry));
                *load_delta.entry((set, i)).or_insert(0) += e;
                *load_delta.entry((set, j)).or_insert(0) -= e;
            }
        }
    }
    for set in 0..cfg.sets() as usize {
        let mut load = 0i64;
        for t in 0..accesses.len() {
            load += load_delta.get(&(set, t)).copied().unwrap_or(0);
            if load > i64::from(cfg.ways) {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn foo_solutions_are_capacity_feasible(trace in trace_strategy(60)) {
        let cfg = tiny_cfg();
        for foo_cfg in [FooConfig::foo_ohr(), FooConfig::foo_bhr(), FooConfig::flack()] {
            let sol = foo::solve(&trace, &cfg, &foo_cfg);
            prop_assert_eq!(sol.keep.len(), trace.len());
            prop_assert_eq!(sol.expected_hit.len(), trace.len());
            prop_assert!(check_feasible(&trace, &cfg, &sol), "{:?}", foo_cfg);
        }
    }

    #[test]
    fn expected_hits_never_precede_a_keep(trace in trace_strategy(60)) {
        // Every expected hit must be the target of some kept interval: the
        // count of expected hits equals the count of keeps whose window is
        // re-accessed.
        let cfg = tiny_cfg();
        let sol = foo::solve(&trace, &cfg, &FooConfig::foo_ohr());
        prop_assert_eq!(
            sol.expected_hit.iter().filter(|&&h| h).count(),
            sol.kept_count(),
        );
        // The first access of any start address can never be an expected hit.
        let mut seen = std::collections::HashSet::new();
        for (i, a) in trace.iter().enumerate() {
            if seen.insert(a.pw.start) {
                prop_assert!(!sol.expected_hit[i], "first touch flagged as hit");
            }
        }
    }

    #[test]
    fn replay_achieves_expected_hits_in_exact_mode(trace in trace_strategy(50)) {
        // In ExactWindow mode with eager replay, every expected hit the
        // solver promises is realised by the replayed cache (the per-set
        // formulation makes decisions enforceable).
        let cfg = tiny_cfg();
        let sol = foo::solve(&trace, &cfg, &FooConfig::foo_ohr());
        let stats = replay::replay(&trace, &cfg, &sol, EvictionTiming::Eager);
        let expected: u64 = sol.expected_hit.iter().filter(|&&h| h).count() as u64;
        prop_assert!(
            stats.pw_hits + stats.pw_partial_hits >= expected,
            "promised {} hits, achieved {} (+{} partial)",
            expected, stats.pw_hits, stats.pw_partial_hits
        );
    }

    #[test]
    fn lazy_replay_never_misses_more_than_eager(trace in trace_strategy(80)) {
        let cfg = tiny_cfg();
        let sol = foo::solve(&trace, &cfg, &FooConfig::flack());
        let eager = replay::replay(&trace, &cfg, &sol, EvictionTiming::Eager);
        let lazy = replay::replay(&trace, &cfg, &sol, EvictionTiming::Lazy);
        prop_assert!(lazy.uops_missed <= eager.uops_missed);
    }

    #[test]
    fn jenks_breaks_are_sorted_and_cover(values in prop::collection::vec(0.0f64..1.0, 1..40)) {
        let breaks = jenks_breaks(&values, 8);
        prop_assert!(breaks.windows(2).all(|w| w[0] < w[1]), "{:?}", breaks);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(*breaks.last().unwrap(), max);
        for &v in &values {
            let c = classify(v, &breaks);
            prop_assert!(c < breaks.len());
            prop_assert!(v <= breaks[c] + 1e-12);
        }
    }

    #[test]
    fn jenks_matches_brute_force_on_small_inputs(
        values in prop::collection::vec(0.0f64..1.0, 2..8),
        classes in 2usize..4,
    ) {
        let breaks = jenks_breaks(&values, classes);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        let k = classes.min(sorted.len());
        // Brute force: all ways to cut `sorted` into k contiguous groups.
        fn ssd(xs: &[f64]) -> f64 {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum()
        }
        fn best(xs: &[f64], k: usize) -> f64 {
            if k == 1 || xs.len() <= 1 {
                return if k >= 1 { ssd(xs) } else { f64::INFINITY };
            }
            let mut b = f64::INFINITY;
            for cut in 1..=xs.len() - (k - 1) {
                let cand = ssd(&xs[..cut]) + best(&xs[cut..], k - 1);
                if cand < b {
                    b = cand;
                }
            }
            b
        }
        let optimal = best(&sorted, k);
        // Recompute the SSD the returned breaks induce.
        let mut total = 0.0;
        let mut lo = 0usize;
        for &b in &breaks {
            let hi = sorted.iter().position(|&x| x > b).unwrap_or(sorted.len());
            if hi > lo {
                total += ssd(&sorted[lo..hi]);
            }
            lo = hi;
        }
        prop_assert!(total <= optimal + 1e-9, "jenks {} vs optimal {}", total, optimal);
    }
}
