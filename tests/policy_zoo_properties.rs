//! Property wall for the classic policy zoo: seeded random workloads drive
//! each zoo policy through the real cache while the test holds a second
//! handle to the concrete policy (via a shared-cell forwarding wrapper) and
//! checks its structural invariants after every access:
//!
//! * ARC / CAR — ghost lists (B1/B2) never exceed their per-way capacity
//!   and the adaptation target never exceeds the associativity;
//! * CLOCK — the hand always points inside `[0, ways)` and advances to
//!   `victim + 1 (mod ways)` on every selection;
//! * SLRU — the probation/protected segment counts sum to exactly the
//!   set's resident population and the protected segment respects its cap;
//! * 2Q — the A1out ghost list is bounded by the associativity;
//! * LFU — ties (equal hit counts, equal recency) break deterministically
//!   to the lowest slot.
//!
//! A final conformance sweep runs every zoo policy and the set-dueling
//! meta-policy through `CheckedPolicy` (strict invariants), mirroring
//! `policy_invariants.rs` for the paper's roster.

use std::cell::RefCell;
use std::rc::Rc;
use uopcache::cache::checked::verify_stats;
use uopcache::cache::{CheckedPolicy, PwMeta, PwReplacementPolicy, UopCache};
use uopcache::model::json::Json;
use uopcache::model::rng::{Prng, Rng};
use uopcache::model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination, UopCacheConfig};
use uopcache::obs::{EventKind, RingRecorder};
use uopcache::policies::{
    run_trace, ArcPolicy, CarPolicy, ClockPolicy, LfuPolicy, MruPolicy, SetDuelingPolicy,
    SlruPolicy, TwoQPolicy,
};

fn small_cfg(entries: u32, ways: u32) -> UopCacheConfig {
    UopCacheConfig {
        entries,
        ways,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: ways.min(4),
    }
}

/// A short trace over a small address universe with variable uop counts (so
/// multi-entry PWs and overlapping windows both occur).
fn random_trace(rng: &mut Prng, max_len: usize) -> LookupTrace {
    let len = rng.gen_range(1..max_len.max(2));
    (0..len)
        .map(|_| {
            let slot = rng.gen_range(0..24u64);
            let uops = rng.gen_range(1..28u32);
            let start = 0x1000 + slot * 64;
            PwAccess::new(PwDesc::new(
                Addr::new(start),
                uops,
                uops * 3,
                PwTermination::TakenBranch,
            ))
        })
        .collect()
}

/// Forwards every hook to a shared concrete policy, so the test can inspect
/// the policy's internals while the cache owns the `Box<dyn>` driving it.
struct Shared<P>(Rc<RefCell<P>>);

impl<P: PwReplacementPolicy> PwReplacementPolicy for Shared<P> {
    fn name(&self) -> &'static str {
        self.0.borrow().name()
    }
    fn prepare(&mut self, sets: usize, ways: u32) {
        self.0.borrow_mut().prepare(sets, ways);
    }
    fn on_lookup(&mut self, pw: &PwDesc) {
        self.0.borrow_mut().on_lookup(pw);
    }
    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        self.0.borrow_mut().on_hit(set, meta);
    }
    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        self.0.borrow_mut().on_insert(set, meta);
    }
    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        self.0.borrow_mut().on_evict(set, meta);
    }
    fn on_invalidate(&mut self, set: usize, meta: &PwMeta) {
        self.0.borrow_mut().on_invalidate(set, meta);
    }
    fn should_bypass(
        &mut self,
        set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        self.0
            .borrow_mut()
            .should_bypass(set, incoming, needed_entries, free_entries, resident)
    }
    fn choose_victim(&mut self, set: usize, incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        self.0.borrow_mut().choose_victim(set, incoming, resident)
    }
    fn last_selection_was_fallback(&self) -> bool {
        self.0.borrow().last_selection_was_fallback()
    }
    fn introspect(&self) -> Option<Json> {
        self.0.borrow().introspect()
    }
}

/// Drives `policy` over `rounds` seeded traces, calling `check(&policy, set
/// count)` after every access. The policy stays warm across accesses within
/// a round; each round gets a fresh cache and policy state is rebuilt by
/// `fresh`.
fn drive_with_checks<P, F, C>(seed: u64, rounds: u64, cfg: UopCacheConfig, fresh: F, mut check: C)
where
    P: PwReplacementPolicy + 'static,
    F: Fn() -> P,
    C: FnMut(&P, usize),
{
    let sets = (cfg.entries / cfg.ways) as usize;
    let mut rng = Prng::seed_from_u64(seed);
    for round in 0..rounds {
        let trace = random_trace(&mut rng, 160);
        let shared = Rc::new(RefCell::new(fresh()));
        let handle = Rc::clone(&shared);
        let mut cache = UopCache::new(cfg, Box::new(Shared(shared)));
        for (i, access) in trace.iter().enumerate() {
            if !cache.lookup(&access.pw).is_full_hit() {
                cache.insert(&access.pw);
            }
            let p = handle.borrow();
            check(&p, sets);
            let _ = (round, i);
        }
        verify_stats(cache.stats());
    }
}

#[test]
fn arc_ghost_lists_and_target_stay_bounded() {
    let cfg = small_cfg(8, 4);
    drive_with_checks(0xA2C, 24, cfg, ArcPolicy::new, |p: &ArcPolicy, sets| {
        for set in 0..sets {
            let (b1, b2) = p.ghost_lens(set);
            assert!(b1 <= p.ghost_capacity(), "B1 {b1} over capacity");
            assert!(b2 <= p.ghost_capacity(), "B2 {b2} over capacity");
            assert!(p.target(set) <= cfg.ways, "target over associativity");
        }
    });
}

#[test]
fn car_ghost_lists_and_target_stay_bounded() {
    let cfg = small_cfg(8, 4);
    drive_with_checks(0xCA2, 24, cfg, CarPolicy::new, |p: &CarPolicy, sets| {
        for set in 0..sets {
            let (b1, b2) = p.ghost_lens(set);
            assert!(b1 <= cfg.ways && b2 <= cfg.ways, "ghosts over per-way cap");
            assert!(p.target(set) <= cfg.ways, "target over associativity");
        }
    });
}

#[test]
fn twoq_ghost_list_stays_bounded() {
    let cfg = small_cfg(8, 4);
    drive_with_checks(0x2B2, 24, cfg, TwoQPolicy::new, |p: &TwoQPolicy, sets| {
        for set in 0..sets {
            assert!(p.ghost_len(set) <= cfg.ways, "A1out over per-way cap");
        }
    });
}

#[test]
fn clock_hand_stays_in_range_under_churn() {
    let cfg = small_cfg(8, 4);
    drive_with_checks(
        0xC10C,
        24,
        cfg,
        ClockPolicy::new,
        |p: &ClockPolicy, sets| {
            for set in 0..sets {
                assert!(
                    u32::from(p.hand(set)) < cfg.ways,
                    "hand {} out of [0, {})",
                    p.hand(set),
                    cfg.ways
                );
            }
        },
    );
}

#[test]
fn clock_hand_advances_monotonically_modulo_ways() {
    // Driven directly (no cache): with a full, static resident set the hand
    // must land on `victim.slot + 1 (mod ways)` after every selection, and
    // consecutive victims sweep the ways in circular order once all
    // reference bits have been consumed.
    let ways = 4u32;
    let mut p = ClockPolicy::new();
    p.prepare(1, ways);
    let meta = |slot: u8| PwMeta {
        desc: PwDesc::new(
            Addr::new(0x100 + u64::from(slot) * 64),
            4,
            12,
            PwTermination::TakenBranch,
        ),
        slot,
        entries: 1,
        inserted_at: 0,
        last_access: 0,
        hits: 0,
    };
    let resident: Vec<PwMeta> = (0..4u8).map(meta).collect();
    for m in &resident {
        p.on_insert(0, m);
    }
    let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
    let mut rng = Prng::seed_from_u64(0x44AD);
    for step in 0..200 {
        // Randomly re-reference someone, then select.
        if rng.gen_range(0..2u32) == 1 {
            let lucky = rng.gen_range(0..4u64) as usize;
            p.on_hit(0, &resident[lucky]);
        }
        let v = p.choose_victim(0, &incoming, &resident);
        let expect = (u32::from(resident[v].slot) + 1) % ways;
        assert_eq!(
            u32::from(p.hand(0)),
            expect,
            "step {step}: hand must advance past the victim"
        );
        // The evicted slot is immediately reused by an identical window.
        p.on_evict(0, &resident[v]);
        p.on_insert(0, &resident[v]);
    }
}

#[test]
fn slru_segments_reconcile_with_resident_population() {
    // The per-set probation + protected counts must always equal the set's
    // live population (reconstructed from the recorded event stream), and
    // the protected segment must respect its capacity.
    let cfg = small_cfg(8, 4);
    let sets = (cfg.entries / cfg.ways) as usize;
    let protected_cap = (cfg.ways / 2).max(1);
    let mut rng = Prng::seed_from_u64(0x51BD);
    for round in 0..24 {
        let trace = random_trace(&mut rng, 160);
        let shared = Rc::new(RefCell::new(SlruPolicy::new()));
        let handle = Rc::clone(&shared);
        let mut cache = UopCache::new(cfg, Box::new(Shared(shared)));
        cache.set_recorder(Box::new(RingRecorder::new(1 << 20)));
        for access in trace.iter() {
            if !cache.lookup(&access.pw).is_full_hit() {
                cache.insert(&access.pw);
            }
            let p = handle.borrow();
            for set in 0..sets {
                let (probation, protected) = p.segment_counts(set);
                assert!(probation + protected <= cfg.ways, "round {round}");
                assert!(protected <= protected_cap, "round {round}");
            }
        }
        // Reconcile: inserts minus departures per set == segment sum.
        let mut live = vec![0i64; sets];
        let recorder = cache.take_recorder().expect("installed above");
        for ev in recorder.events() {
            match ev.kind {
                EventKind::Insert => live[ev.set as usize] += 1,
                EventKind::Evict | EventKind::Invalidate => live[ev.set as usize] -= 1,
                _ => {}
            }
        }
        let p = handle.borrow();
        for (set, &population) in live.iter().enumerate() {
            let (probation, protected) = p.segment_counts(set);
            assert_eq!(
                i64::from(probation + protected),
                population,
                "round {round} set {set}: segment sum drifted from population"
            );
        }
    }
}

#[test]
fn lfu_breaks_ties_deterministically_to_the_lowest_slot() {
    let mut p = LfuPolicy::new();
    p.prepare(1, 4);
    let meta = |slot: u8, hits: u32, last_access: u64| PwMeta {
        desc: PwDesc::new(
            Addr::new(0x100 + u64::from(slot) * 64),
            4,
            12,
            PwTermination::TakenBranch,
        ),
        slot,
        entries: 1,
        inserted_at: 0,
        last_access,
        hits,
    };
    let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
    // Full tie: equal hits, equal recency -> the first (lowest-slot) entry.
    let tied = [meta(0, 2, 5), meta(1, 2, 5), meta(2, 2, 5)];
    for _ in 0..3 {
        assert_eq!(p.choose_victim(0, &incoming, &tied), 0, "must be stable");
    }
    // Hits dominate; recency only splits equal hit counts.
    let mixed = [meta(0, 3, 1), meta(1, 1, 9), meta(2, 1, 2)];
    assert_eq!(
        p.choose_victim(0, &incoming, &mixed),
        2,
        "older of the cold"
    );
    // MRU sanity alongside: newest goes first, ties to the lowest slot.
    let mut mru = MruPolicy::new();
    let fresh = [meta(0, 0, 7), meta(1, 0, 7), meta(2, 0, 3)];
    assert_eq!(mru.choose_victim(0, &incoming, &fresh), 0);
}

/// Every zoo policy plus the set-dueling meta-policy, wrapped in the
/// strict-invariants conformance checker.
fn zoo_under_test(ways: u32) -> Vec<Box<dyn PwReplacementPolicy>> {
    let bare: Vec<Box<dyn PwReplacementPolicy>> = vec![
        Box::new(MruPolicy::new()),
        Box::new(LfuPolicy::new()),
        Box::new(ClockPolicy::new()),
        Box::new(SlruPolicy::new()),
        Box::new(TwoQPolicy::new()),
        Box::new(ArcPolicy::new()),
        Box::new(CarPolicy::new()),
        Box::new(SetDuelingPolicy::default_zoo()),
    ];
    bare.into_iter()
        .map(|p| Box::new(CheckedPolicy::new(p, ways)) as Box<dyn PwReplacementPolicy>)
        .collect()
}

#[test]
fn zoo_conformance_sweep_under_strict_invariants() {
    let mut rng = Prng::seed_from_u64(0x200);
    for round in 0..24 {
        let trace = random_trace(&mut rng, 120);
        let cfg = small_cfg(8, 4);
        for policy in zoo_under_test(cfg.ways) {
            let name = policy.name();
            let mut cache = UopCache::new(cfg, policy);
            let stats = run_trace(&mut cache, &trace);
            assert!(
                cache.occupied_entries() <= cfg.entries,
                "round {round} {name}: overfull"
            );
            assert_eq!(stats.lookups, trace.len() as u64, "round {round} {name}");
            verify_stats(&stats);
        }
    }
}

#[test]
fn zoo_conformance_survives_an_odd_geometry() {
    // 3 ways: SLRU's protected cap and 2Q's A1 threshold both hit their
    // rounding branches; 24 entries / 3 ways = 8 sets.
    let mut rng = Prng::seed_from_u64(0x0DD);
    for round in 0..12 {
        let trace = random_trace(&mut rng, 120);
        let cfg = small_cfg(24, 3);
        for policy in zoo_under_test(cfg.ways) {
            let name = policy.name();
            let mut cache = UopCache::new(cfg, policy);
            let stats = run_trace(&mut cache, &trace);
            verify_stats(&stats);
            assert!(
                cache.occupied_entries() <= cfg.entries,
                "round {round} {name}: overfull"
            );
        }
    }
}
