//! Differential wall for the simulation kernel: every online policy is
//! replayed over seeded workloads through `CheckedPolicy` (which re-derives
//! the cache state from the hook stream and panics on any contract
//! violation) while a `RingRecorder` captures the complete decision stream —
//! every hit, miss, insertion, eviction, bypass and verdict, in order, with
//! set and slot indices.
//!
//! The stream is folded into a two-component [`StreamDigest`] that is pinned
//! under `tests/golden/`. The first component hashes every event; the second
//! hashes only evictions and invalidations — the victim sequence — so two
//! policies whose verdict streams happen to coincide still cannot collide
//! unless they evicted the same windows in the same order. Any rewrite of
//! the cache kernel (set storage layout, victim-loop structure, slot
//! assignment) must reproduce these sequences byte-for-byte: a single
//! reordered hook, a different slot choice, or a changed verdict moves the
//! digest.
//!
//! To regenerate after an *intentional* behavioural change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test policy_differential
//! ```

use std::path::PathBuf;
use uopcache::cache::{CheckedPolicy, PwReplacementPolicy, UopCache};
use uopcache::model::json::Json;
use uopcache::model::FrontendConfig;
use uopcache::obs::{RingRecorder, StreamDigest};
use uopcache::policies::run_trace;
use uopcache::trace::AppId;
use uopcache_bench::apps::trace_for;
use uopcache_bench::policies::{PolicyId, ProfileInputs};

/// Fixed seed for the one seeded policy (Random), so the wall is a pure
/// function of (app, policy).
const RANDOM_SEED: u64 = 0x5eed_d1ff;

/// Trace length: long enough that every set sees eviction pressure and the
/// adaptive policies (SHiP++, GHRP, Mockingjay) leave their cold-start
/// regime.
const LEN: usize = 3_000;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/policy_differential.json")
}

/// A quarter-capacity Zen3 frontend: 8 ways x 16 sets. Small enough that
/// every policy's eviction logic runs hot, large enough that hits dominate
/// nowhere trivially.
fn wall_config() -> FrontendConfig {
    let mut cfg = FrontendConfig::zen3();
    cfg.uop_cache = cfg.uop_cache.with_entries(cfg.uop_cache.entries / 4);
    cfg
}

/// Every registered policy is under the wall: the figure roster, the seeded
/// Random control, the classic zoo and the set-dueling meta-policy.
fn policy_names() -> Vec<&'static str> {
    PolicyId::ALL.iter().map(|id| id.name()).collect()
}

fn build_policy(
    name: &str,
    cfg: &FrontendConfig,
    profiles: &ProfileInputs,
) -> Box<dyn PwReplacementPolicy> {
    let id: PolicyId = name.parse().expect("roster name parses");
    id.build(cfg, profiles, RANDOM_SEED)
}

/// Replays one (app, policy) cell through `CheckedPolicy` with a recorder
/// installed and returns (events offered, digest, evictions).
fn run_cell(app: AppId, name: &str, cfg: &FrontendConfig, profiles: &ProfileInputs) -> Json {
    let policy = build_policy(name, cfg, profiles);
    let checked = CheckedPolicy::new(policy, cfg.uop_cache.ways);
    let mut cache = UopCache::new(cfg.uop_cache, Box::new(checked));
    cache.set_recorder(Box::new(RingRecorder::new(1 << 22)));
    let trace = trace_for(app, 0, LEN);
    let stats = run_trace(&mut cache, &trace);
    assert!(
        stats.evicted_pws > 0,
        "{}/{name}: the wall must exercise the eviction path",
        app.name()
    );
    let recorder = cache.take_recorder().expect("recorder installed");
    let events = recorder.events();
    assert_eq!(
        recorder.offered() as usize,
        events.len(),
        "{}/{name}: ring must retain the whole stream",
        app.name()
    );
    Json::Obj(vec![
        ("app".to_string(), Json::Str(app.name().to_string())),
        ("policy".to_string(), Json::Str(name.to_string())),
        ("events".to_string(), Json::U64(recorder.offered())),
        (
            "digest".to_string(),
            Json::Str(StreamDigest::from_events(&events).to_string()),
        ),
        ("evictions".to_string(), Json::U64(stats.evicted_pws)),
        ("uops_hit".to_string(), Json::U64(stats.uops_hit)),
    ])
}

#[test]
fn decision_streams_match_golden_digests() {
    let cfg = wall_config();
    let apps = [AppId::Kafka, AppId::Clang];
    let mut cases = Vec::new();
    for app in apps {
        let train = trace_for(app, 0, LEN);
        let profiles = ProfileInputs::build(&cfg, &train);
        for name in policy_names() {
            cases.push(run_cell(app, name, &cfg, &profiles));
        }
    }
    let actual = Json::Obj(vec![
        ("schema_version".to_string(), Json::U64(1)),
        ("cases".to_string(), Json::Arr(cases)),
    ])
    .to_string();

    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test policy_differential`",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected.trim_end(),
        "a policy's decision stream drifted from the pinned sequence; if the \
         change is intentional, regenerate with `UPDATE_GOLDEN=1 cargo test \
         --test policy_differential` and explain the drift in the commit"
    );
}

/// The wall itself must be deterministic: two replays of the same cell
/// produce identical streams (otherwise a digest mismatch would be noise,
/// not signal).
#[test]
fn decision_streams_are_reproducible() {
    let cfg = wall_config();
    let train = trace_for(AppId::Postgres, 0, LEN);
    let profiles = ProfileInputs::build(&cfg, &train);
    for name in policy_names() {
        let a = run_cell(AppId::Postgres, name, &cfg, &profiles).to_string();
        let b = run_cell(AppId::Postgres, name, &cfg, &profiles).to_string();
        assert_eq!(a, b, "{name}: decision stream is not reproducible");
    }
}
