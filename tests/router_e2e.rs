//! End-to-end tests for the consistent-hash router, run in-process over
//! loopback TCP against real `Server` backends.
//!
//! Covers the three contracts the router makes on top of the daemon's:
//!
//! 1. one event loop multiplexes a thousand-plus concurrent client
//!    connections, and every routed report is byte-identical to the offline
//!    sweep whichever backend ran it;
//! 2. a backend killed mid-stream is evicted by the health prober and fresh
//!    jobs land on the survivors with identical bytes (failover);
//! 3. `shutdown` drains in-flight forwards — waiting clients still get their
//!    results — refuses new work, and exits without touching the backends.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use uopcache_bench::policies::PolicyRegistry;
use uopcache_bench::sweep::{run_sweep, SweepSpec};
use uopcache_exec::Engine;
use uopcache_model::json::Json;
use uopcache_model::FrontendConfig;
use uopcache_serve::{
    frame, read_frame, write_frame, Client, ClientError, Router, RouterConfig, RouterHandle,
    Server, ServerConfig, ServerHandle,
};
use uopcache_trace::AppId;

fn spec(app: AppId, len: usize) -> SweepSpec {
    let registry = PolicyRegistry::all();
    SweepSpec {
        cfg: FrontendConfig::zen3(),
        config_name: "zen3".to_string(),
        apps: vec![app],
        policies: vec![registry
            .resolve("lru")
            .expect("lru resolves")
            .name()
            .to_string()],
        variant: 0,
        len,
        metrics: false,
        sample: None,
        scale: 1,
    }
}

fn spawn_backend() -> ServerHandle {
    Server::bind(ServerConfig::builder().jobs(1).build())
        .expect("backend binds on loopback")
        .spawn()
        .expect("backend spawns")
}

fn spawn_router(backends: &[SocketAddr]) -> RouterHandle {
    Router::bind(
        RouterConfig::builder()
            .backends(backends.iter().copied())
            .health_interval(Duration::from_millis(100))
            .retry_backoff(Duration::from_millis(20))
            .build(),
    )
    .expect("router binds on loopback")
    .spawn()
    .expect("router spawns")
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(addr, Duration::from_secs(5)).expect("loopback connect")
}

/// Connects with retry: a thousand near-simultaneous connects can overflow
/// the listen backlog transiently while the event loop drains it.
fn raw_connect(addr: SocketAddr) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "connect to {addr} kept failing: {e}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn frame_type(reply: &Json) -> &str {
    reply
        .field("type")
        .expect("frames carry a type")
        .as_str()
        .expect("type is a string")
}

fn drain(handle: ServerHandle) {
    let mut client = connect(handle.addr());
    client.shutdown(Duration::from_secs(5)).expect("drain ack");
    handle
        .join_within(Duration::from_secs(30))
        .expect("backend exits after drain")
        .expect("clean exit");
}

#[test]
fn a_thousand_concurrent_clients_get_offline_identical_bytes_across_backends() {
    let apps = [AppId::Kafka, AppId::Mysql, AppId::Postgres, AppId::Tomcat];
    let specs: Vec<SweepSpec> = apps.iter().map(|&app| spec(app, 700)).collect();
    let offline: Vec<String> = specs
        .iter()
        .map(|s| run_sweep(s, &Engine::new(2)).to_json())
        .collect();

    let backends = [spawn_backend(), spawn_backend()];
    let router = spawn_router(&[backends[0].addr(), backends[1].addr()]);

    // 1000 connections pipeline one submit-and-wait frame each, all open at
    // once — the single nonblocking event loop must multiplex every one of
    // them. Four distinct specs, so dedupe collapses the fan-in to four jobs.
    const CLIENTS: usize = 1_000;
    let mut streams = Vec::with_capacity(CLIENTS);
    for i in 0..CLIENTS {
        let mut stream = raw_connect(router.addr());
        let submit = frame(
            "submit",
            vec![
                ("job".to_string(), specs[i % specs.len()].to_json()),
                ("wait".to_string(), Json::Bool(true)),
                ("timeout_ms".to_string(), Json::U64(300_000)),
            ],
        );
        write_frame(&mut stream, &submit).expect("submit frame written");
        streams.push(stream);
    }

    for (i, stream) in streams.iter_mut().enumerate() {
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("read timeout set");
        let stall = Duration::from_secs(300);
        let accepted = read_frame(&mut *stream, stall)
            .expect("accepted frame arrives")
            .expect("connection stays open");
        assert_eq!(frame_type(&accepted), "accepted", "client {i}: {accepted}");
        let result = read_frame(&mut *stream, stall)
            .expect("result frame arrives")
            .expect("connection stays open");
        assert_eq!(frame_type(&result), "result", "client {i}: {result}");
        let report = result.field("result").expect("result body");
        assert_eq!(
            report.to_string(),
            offline[i % specs.len()],
            "client {i}: routed bytes must match the offline sweep"
        );
    }
    drop(streams);

    // The router saw the full fan-in but collapsed it to one job per spec,
    // and memory stayed bounded: nothing pending, queues within capacity.
    let mut admin = connect(router.addr());
    let stats = admin.stats(Duration::from_secs(5)).expect("stats");
    let counters = stats
        .field("metrics")
        .and_then(|m| m.field("counters"))
        .expect("metrics counters");
    let accepted = counters
        .field("jobs_accepted")
        .expect("accepted counter")
        .as_u64()
        .expect("u64");
    let deduped = counters
        .field("jobs_deduped")
        .expect("deduped counter")
        .as_u64()
        .expect("u64");
    assert_eq!(accepted, specs.len() as u64, "{stats}");
    assert_eq!(deduped, (CLIENTS - specs.len()) as u64, "{stats}");
    let depth = stats
        .field("queue_depth")
        .expect("depth gauge")
        .as_u64()
        .expect("u64");
    assert_eq!(depth, 0, "everything drained: {stats}");

    admin.shutdown(Duration::from_secs(5)).expect("drain ack");
    router
        .join_within(Duration::from_secs(30))
        .expect("router exits after drain")
        .expect("clean exit");
    for backend in backends {
        drain(backend);
    }
}

#[test]
fn a_dead_backend_is_evicted_and_fresh_jobs_land_elsewhere_byte_identically() {
    let survivor = spawn_backend();
    let victim = spawn_backend();
    let router = spawn_router(&[survivor.addr(), victim.addr()]);
    let mut client = connect(router.addr());

    // Warm path: the router forwards fine with both backends up.
    let warm = spec(AppId::Kafka, 600);
    let warm_offline = run_sweep(&warm, &Engine::new(2)).to_json();
    let outcome = client
        .submit_and_wait(&warm, None, Duration::from_secs(120))
        .expect("warm job completes");
    assert_eq!(outcome.report.to_string(), warm_offline);

    // Kill one backend mid-stream: drain it directly (drain-aware eviction
    // kicks in first), then its listener disappears entirely.
    drain(victim);

    // The health prober must evict it from placement.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let stats = client.stats(Duration::from_secs(5)).expect("stats");
        let backends = match stats.field("backends").expect("backends array") {
            Json::Arr(items) => items.clone(),
            other => panic!("backends should be an array, got {other}"),
        };
        let evicted = backends.iter().any(|b| {
            b.field("healthy").ok().and_then(Json::as_bool) == Some(false)
                || b.field("draining").ok().and_then(Json::as_bool) == Some(true)
        });
        if evicted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "health probing never evicted the dead backend: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Fresh jobs — whichever backend their ring position prefers — must all
    // land on the survivor with offline-identical bytes.
    for (i, app) in [AppId::Mysql, AppId::Postgres, AppId::Tomcat, AppId::Drupal]
        .into_iter()
        .enumerate()
    {
        let s = spec(app, 500 + i * 40);
        let offline = run_sweep(&s, &Engine::new(3)).to_json();
        let outcome = client
            .submit_and_wait(&s, None, Duration::from_secs(120))
            .expect("failover lands the job on the survivor");
        assert_eq!(
            outcome.report.to_string(),
            offline,
            "failover must not change a byte"
        );
    }

    client.shutdown(Duration::from_secs(5)).expect("drain ack");
    router
        .join_within(Duration::from_secs(30))
        .expect("router exits after drain")
        .expect("clean exit");
    drain(survivor);
}

#[test]
fn router_shutdown_drains_in_flight_forwards_and_leaves_backends_serving() {
    let backend = spawn_backend();
    let router = spawn_router(&[backend.addr()]);

    // A waiter blocks on a meaty job from its own connection; the shutdown
    // arrives while it is (very likely) still being forwarded.
    let slow = spec(AppId::Wordpress, 4_000);
    let slow_offline = run_sweep(&slow, &Engine::new(2)).to_json();
    let router_addr = router.addr();
    let waiter_spec = slow.clone();
    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(router_addr, Duration::from_secs(5)).expect("connect");
        c.submit_and_wait(&waiter_spec, None, Duration::from_secs(120))
    });

    // Give the submit a moment to be admitted, then drain the router.
    let mut admin = connect(router.addr());
    let admit_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = admin.stats(Duration::from_secs(5)).expect("stats");
        // The counter only appears once the first job is admitted.
        let accepted = stats
            .field("metrics")
            .and_then(|m| m.field("counters"))
            .and_then(|c| c.field("jobs_accepted"))
            .ok()
            .and_then(|v| v.as_u64());
        if accepted == Some(1) {
            break;
        }
        assert!(
            Instant::now() < admit_deadline,
            "the waiter's job was never admitted: {stats}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    admin.shutdown(Duration::from_secs(5)).expect("drain ack");

    // New work is refused while draining...
    let err = admin
        .submit(&spec(AppId::Kafka, 300), None, Duration::from_secs(5))
        .expect_err("draining router refuses new work");
    assert!(matches!(err, ClientError::Busy { .. }), "{err}");

    // ...but the in-flight forward completes and its waiter gets the bytes.
    let outcome = waiter
        .join()
        .expect("waiter thread exits")
        .expect("in-flight forward drains to completion");
    assert_eq!(outcome.report.to_string(), slow_offline);

    router
        .join_within(Duration::from_secs(60))
        .expect("router exits after the drain")
        .expect("clean exit");

    // The backends are the router's to use, not to own: the daemon is still
    // up and serving byte-identical results directly.
    let mut direct = connect(backend.addr());
    let again = direct
        .submit_and_wait(&slow, None, Duration::from_secs(120))
        .expect("backend still serves after the router drained");
    assert!(again.deduped, "the backend still remembers the routed job");
    assert_eq!(again.report.to_string(), slow_offline);
    direct.shutdown(Duration::from_secs(5)).expect("drain ack");
    backend
        .join_within(Duration::from_secs(30))
        .expect("backend exits")
        .expect("clean exit");
}
