//! Differential determinism: the same sweep run at `--jobs 1`, `--jobs 2`
//! and `--jobs 8` must produce byte-identical canonical JSON. This is the
//! executable form of the engine's contract — results are a pure function of
//! the task keys, never of scheduling.

use uopcache::exec::Engine;
use uopcache::model::FrontendConfig;
use uopcache::trace::AppId;
use uopcache_bench::sweep::{run_sweep, SweepSpec};

fn spec() -> SweepSpec {
    SweepSpec {
        cfg: FrontendConfig::zen3(),
        config_name: "zen3".to_string(),
        apps: vec![AppId::Kafka, AppId::Postgres, AppId::Clang],
        policies: vec![
            "LRU".to_string(),
            "SRRIP".to_string(),
            "FURBYS".to_string(),
            "Random".to_string(),
        ],
        variant: 0,
        len: 3_000,
        metrics: false,
        sample: None,
        scale: 1,
    }
}

#[test]
fn sweep_json_is_byte_identical_across_worker_counts() {
    let spec = spec();
    let jobs1 = run_sweep(&spec, &Engine::new(1)).to_json();
    let jobs2 = run_sweep(&spec, &Engine::new(2)).to_json();
    let jobs8 = run_sweep(&spec, &Engine::new(8)).to_json();
    assert_eq!(jobs1, jobs2, "--jobs 2 diverged from the serial path");
    assert_eq!(jobs1, jobs8, "--jobs 8 diverged from the serial path");
}

#[test]
fn sweep_json_is_byte_identical_even_with_failing_tasks() {
    // A panicking task must surface as the same structured failure row for
    // every worker count — failures are part of the canonical output, so
    // they have to merge in key order like everything else.
    let mut spec = spec();
    spec.policies.push("NoSuchPolicy".to_string());
    let jobs1 = run_sweep(&spec, &Engine::new(1)).to_json();
    let jobs8 = run_sweep(&spec, &Engine::new(8)).to_json();
    assert_eq!(jobs1, jobs8);
    assert!(jobs1.contains("NoSuchPolicy"));
}

#[test]
fn seeds_are_stable_per_key_and_distinct_across_cells() {
    let report = run_sweep(&spec(), &Engine::new(4));
    for cell in &report.cells {
        assert_eq!(cell.seed, cell.key.seed(), "seed must derive from the key");
    }
    let mut seeds: Vec<u64> = report.cells.iter().map(|c| c.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), report.cells.len(), "per-task seeds collided");
}
