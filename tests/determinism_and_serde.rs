//! Determinism and serialisation guarantees: every experiment input is a
//! pure function of its parameters, and the artifacts the pipeline stores
//! between steps (traces, hints, results) round-trip through JSON.

use uopcache::cache::LruPolicy;
use uopcache::core::{Flack, FurbysPipeline};
use uopcache::model::json;
use uopcache::model::{FrontendConfig, LookupTrace, SimResult};
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant, Program, TraceStats};

#[test]
fn traces_are_pure_functions_of_their_parameters() {
    for app in [AppId::Kafka, AppId::Wordpress] {
        for variant in [0u32, 3] {
            let a = build_trace(app, InputVariant::new(variant), 5_000);
            let b = build_trace(app, InputVariant::new(variant), 5_000);
            assert_eq!(a, b, "{app} input-{variant}");
        }
    }
}

#[test]
fn simulation_results_are_deterministic() {
    let trace = build_trace(AppId::Mysql, InputVariant::DEFAULT, 10_000);
    let cfg = FrontendConfig::zen3();
    let run = || {
        Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(&trace)
    };
    assert_eq!(run(), run());
}

#[test]
fn flack_solutions_are_deterministic() {
    let trace = build_trace(AppId::Finagle, InputVariant::DEFAULT, 8_000);
    let cfg = FrontendConfig::zen3().uop_cache;
    let a = Flack::new().run(&trace, &cfg);
    let b = Flack::new().run(&trace, &cfg);
    assert_eq!(a.solution, b.solution);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn furbys_profiles_are_deterministic() {
    let trace = build_trace(AppId::Cassandra, InputVariant::DEFAULT, 8_000);
    let pipeline = FurbysPipeline::new(FrontendConfig::zen3());
    let a = pipeline.profile(&trace);
    let b = pipeline.profile(&trace);
    assert_eq!(a.hints, b.hints);
}

#[test]
fn trace_round_trips_through_json() {
    let trace = build_trace(AppId::Python, InputVariant::DEFAULT, 2_000);
    let json = json::to_string(&trace);
    let back: LookupTrace = json::from_str(&json).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn program_and_stats_round_trip_through_json() {
    let spec = AppId::Tomcat.spec();
    let program = Program::synthesize(&spec);
    let json = json::to_string(&program);
    let back: Program = json::from_str(&json).unwrap();
    assert_eq!(back, program);

    let trace = build_trace(AppId::Tomcat, InputVariant::DEFAULT, 2_000);
    let stats = TraceStats::from_trace(&trace, 8);
    let json = json::to_string(&stats);
    let back: TraceStats = json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}

#[test]
fn sim_results_round_trip_through_json() {
    let trace = build_trace(AppId::Drupal, InputVariant::DEFAULT, 3_000);
    let result = Frontend::builder(FrontendConfig::zen3())
        .policy(LruPolicy::new())
        .build()
        .run(&trace);
    let json = json::to_string(&result);
    let back: SimResult = json::from_str(&json).unwrap();
    assert_eq!(back, result);
}

#[test]
fn hint_maps_round_trip_and_survive_the_pipeline() {
    let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, 6_000);
    let cfg = FrontendConfig::zen3();
    let pipeline = FurbysPipeline::new(cfg);
    let profile = pipeline.profile(&trace);
    let json = profile.hints.to_json().unwrap();
    let restored = uopcache::core::HintMap::from_json(&json).unwrap();
    assert_eq!(restored, profile.hints);
    // Deploying from the restored hints gives identical results.
    let mut restored_profile = profile.clone();
    restored_profile.hints = restored;
    let a = pipeline.deploy_and_run(&profile, &trace);
    let b = pipeline.deploy_and_run(&restored_profile, &trace);
    assert_eq!(a, b);
}

#[test]
fn frontend_configs_round_trip_through_json() {
    for cfg in [FrontendConfig::zen3(), FrontendConfig::zen4()] {
        let json = json::to_string(&cfg);
        let back: FrontendConfig = json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
