//! Cross-crate integration: the full FURBYS pipeline from synthetic trace to
//! timed deployment, and the offline bounds around it.

use uopcache::cache::{LruPolicy, UopCache};
use uopcache::core::{Flack, FurbysPipeline, OracleKind};
use uopcache::model::FrontendConfig;
use uopcache::offline::BeladyPolicy;
use uopcache::policies::run_trace;
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant};

const LEN: usize = 20_000;

#[test]
fn ordering_lru_furbys_flack_holds_in_aggregate() {
    // The paper's central ordering: LRU < FURBYS < FLACK (misses reduced).
    let cfg = FrontendConfig::zen3();
    let mut lru_missed = 0u64;
    let mut furbys_missed = 0u64;
    let mut flack_missed = 0u64;
    let mut sync_lru_missed = 0u64;
    for app in [AppId::Kafka, AppId::Postgres, AppId::Clang] {
        let trace = build_trace(app, InputVariant::DEFAULT, LEN);
        let lru = Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(&trace);
        lru_missed += lru.uopc.uops_missed;
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        furbys_missed += pipeline.deploy_and_run(&profile, &trace).uopc.uops_missed;
        flack_missed += Flack::new().run(&trace, &cfg.uop_cache).stats.uops_missed;
        let mut sync = UopCache::new(cfg.uop_cache, Box::new(LruPolicy::new()));
        sync_lru_missed += run_trace(&mut sync, &trace).uops_missed;
    }
    assert!(
        furbys_missed < lru_missed,
        "FURBYS {furbys_missed} vs LRU {lru_missed}"
    );
    assert!(
        flack_missed < sync_lru_missed,
        "FLACK {flack_missed} vs sync LRU {sync_lru_missed}"
    );
    // FLACK (offline, synchronous) is far below the online policies.
    assert!(flack_missed < furbys_missed);
}

#[test]
fn flack_outperforms_belady_which_outperforms_foo() {
    let cfg = FrontendConfig::zen3();
    let mut foo = 0u64;
    let mut belady = 0u64;
    let mut flack = 0u64;
    for app in [AppId::Kafka, AppId::Mysql, AppId::Python] {
        let trace = build_trace(app, InputVariant::DEFAULT, LEN);
        foo += Flack::ablation(false, false, false)
            .run(&trace, &cfg.uop_cache)
            .stats
            .uops_missed;
        let mut bel = UopCache::new(cfg.uop_cache, Box::new(BeladyPolicy::from_trace(&trace)));
        belady += run_trace(&mut bel, &trace).uops_missed;
        flack += Flack::new().run(&trace, &cfg.uop_cache).stats.uops_missed;
    }
    assert!(flack < belady, "FLACK {flack} vs Belady {belady}");
    assert!(belady < foo, "Belady {belady} vs FOO {foo}");
}

#[test]
fn profiles_transfer_across_inputs() {
    let cfg = FrontendConfig::zen3();
    let app = AppId::Drupal;
    let train = build_trace(app, InputVariant::new(0), LEN);
    let test = build_trace(app, InputVariant::new(1), LEN);
    let pipeline = FurbysPipeline::new(cfg);
    let profile = pipeline.profile(&train);
    let lru = Frontend::builder(cfg)
        .policy(LruPolicy::new())
        .build()
        .run(&test);
    let cross = pipeline.deploy_and_run(&profile, &test);
    assert!(
        cross.uopc.uops_missed < lru.uopc.uops_missed,
        "a cross-input profile must still beat LRU"
    );
}

#[test]
fn all_oracles_feed_the_pipeline() {
    let cfg = FrontendConfig::zen3();
    let trace = build_trace(AppId::Tomcat, InputVariant::DEFAULT, 10_000);
    let lru = Frontend::builder(cfg)
        .policy(LruPolicy::new())
        .build()
        .run(&trace);
    for oracle in [OracleKind::Flack, OracleKind::Belady, OracleKind::Foo] {
        let mut pipeline = FurbysPipeline::new(cfg);
        pipeline.oracle = oracle;
        let profile = pipeline.profile(&trace);
        let r = pipeline.deploy_and_run(&profile, &trace);
        assert!(
            r.uopc.uops_missed <= lru.uopc.uops_missed,
            "{} profile should not lose to LRU",
            oracle.label()
        );
    }
}

#[test]
fn iso_capacity_shape_furbys_at_512_beats_lru_at_768() {
    // Fig. 12's claim at the aggregate level.
    let trace = build_trace(AppId::Postgres, InputVariant::DEFAULT, 40_000);
    let cfg = FrontendConfig::zen3();
    let pipeline = FurbysPipeline::new(cfg);
    let profile = pipeline.profile(&trace);
    let furbys = pipeline.deploy_and_run(&profile, &trace);
    let mut big = cfg;
    big.uop_cache = big.uop_cache.with_entries(768);
    let lru_big = Frontend::builder(big)
        .policy(LruPolicy::new())
        .build()
        .run(&trace);
    assert!(
        furbys.uopc.uops_missed < lru_big.uopc.uops_missed,
        "FURBYS@512 ({}) should beat LRU@768 ({})",
        furbys.uopc.uops_missed,
        lru_big.uopc.uops_missed
    );
}
