//! Regression guard for the paper's headline *shapes*: if a refactor or
//! recalibration breaks an ordering or a gross magnitude, this suite fails.
//!
//! Trace lengths are kept modest so the suite stays fast in debug builds;
//! the thresholds are deliberately looser than the full-length results in
//! `EXPERIMENTS.md`.

use uopcache::cache::{LruPolicy, UopCache};
use uopcache::core::{Flack, FurbysPipeline};
use uopcache::model::FrontendConfig;
use uopcache::offline::BeladyPolicy;
use uopcache::policies::run_trace;
use uopcache::sim::Frontend;
use uopcache::trace::{build_trace, AppId, InputVariant};

const LEN: usize = 30_000;
const APPS: [AppId; 4] = [AppId::Kafka, AppId::Postgres, AppId::Python, AppId::Drupal];

struct Aggregate {
    lru_online: u64,
    furbys: u64,
    lru_sync: u64,
    belady: u64,
    foo: u64,
    flack: u64,
}

fn aggregate() -> Aggregate {
    let cfg = FrontendConfig::zen3();
    let mut agg = Aggregate {
        lru_online: 0,
        furbys: 0,
        lru_sync: 0,
        belady: 0,
        foo: 0,
        flack: 0,
    };
    for app in APPS {
        let trace = build_trace(app, InputVariant::DEFAULT, LEN);
        agg.lru_online += Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(&trace)
            .uopc
            .uops_missed;
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        agg.furbys += pipeline.deploy_and_run(&profile, &trace).uopc.uops_missed;

        let mut sync = UopCache::new(cfg.uop_cache, Box::new(LruPolicy::new()));
        agg.lru_sync += run_trace(&mut sync, &trace).uops_missed;
        let mut bel = UopCache::new(cfg.uop_cache, Box::new(BeladyPolicy::from_trace(&trace)));
        agg.belady += run_trace(&mut bel, &trace).uops_missed;
        agg.foo += Flack::ablation(false, false, false)
            .run(&trace, &cfg.uop_cache)
            .stats
            .uops_missed;
        agg.flack += Flack::new().run(&trace, &cfg.uop_cache).stats.uops_missed;
    }
    agg
}

fn reduction(new: u64, base: u64) -> f64 {
    (1.0 - new as f64 / base as f64) * 100.0
}

#[test]
fn headline_shapes_hold() {
    let a = aggregate();

    // FURBYS achieves a double-digit-ish miss reduction over LRU (paper:
    // 14.34%); guard at >= 8% in aggregate on the reduced app set.
    let furbys_red = reduction(a.furbys, a.lru_online);
    assert!(
        furbys_red >= 8.0,
        "FURBYS reduction {furbys_red:.2}% collapsed"
    );

    // FLACK achieves ~30% (paper: 30.21%); guard at >= 20%.
    let flack_red = reduction(a.flack, a.lru_sync);
    assert!(
        flack_red >= 20.0,
        "FLACK reduction {flack_red:.2}% collapsed"
    );

    // FLACK strictly beats Belady (the paper's central claim).
    assert!(
        a.flack < a.belady,
        "FLACK {} must beat Belady {}",
        a.flack,
        a.belady
    );

    // Raw FOO is far behind FLACK (paper: 17.93% apart) and roughly at or
    // below the LRU level on these workloads.
    let foo_red = reduction(a.foo, a.lru_sync);
    assert!(
        flack_red - foo_red >= 10.0,
        "FLACK ({flack_red:.2}%) vs FOO ({foo_red:.2}%) gap collapsed"
    );

    // Belady itself is a strong bound over LRU.
    let belady_red = reduction(a.belady, a.lru_sync);
    assert!(
        belady_red >= 15.0,
        "Belady reduction {belady_red:.2}% collapsed"
    );

    // FURBYS lands between the best online baselines and FLACK.
    assert!(
        furbys_red < flack_red,
        "the practical policy cannot beat the offline bound"
    );
}

#[test]
fn furbys_is_equivalent_to_a_larger_lru_cache() {
    // Fig. 12 shape: FURBYS at 512 entries at least matches LRU at 640.
    let cfg = FrontendConfig::zen3();
    let mut furbys = 0u64;
    let mut lru_640 = 0u64;
    for app in [AppId::Kafka, AppId::Mysql] {
        let trace = build_trace(app, InputVariant::DEFAULT, LEN);
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        furbys += pipeline.deploy_and_run(&profile, &trace).uopc.uops_missed;
        let mut big = cfg;
        big.uop_cache = big.uop_cache.with_entries(640);
        lru_640 += Frontend::builder(big)
            .policy(LruPolicy::new())
            .build()
            .run(&trace)
            .uopc
            .uops_missed;
    }
    assert!(
        furbys <= lru_640,
        "FURBYS@512 {furbys} vs LRU@640 {lru_640}"
    );
}

#[test]
fn ppw_gain_shape_holds() {
    // Fig. 9 shape: FURBYS improves performance-per-watt over LRU.
    use uopcache::power::{ppw_gain_percent, EnergyModel};
    let cfg = FrontendConfig::zen3();
    let model = EnergyModel::zen3_22nm(&cfg);
    let mut gains = Vec::new();
    for app in [AppId::Kafka, AppId::Clang] {
        let trace = build_trace(app, InputVariant::DEFAULT, LEN);
        let lru = Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(&trace);
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        let furbys = pipeline.deploy_and_run(&profile, &trace);
        gains.push(ppw_gain_percent(&model, &furbys, &lru));
    }
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(
        mean > 0.5,
        "FURBYS PPW gain {mean:.2}% collapsed (paper: 3.10%)"
    );
}
