//! Integration wall for set-dueling dynamic selection and the offline
//! `identify` pass:
//!
//! * the leader/follower partition is a pure function of
//!   `(sets, K, candidates)` — same inputs, same map, K leader sets per
//!   candidate whenever the geometry has room;
//! * a crafted two-phase workload flips the duel winner (MRU wins a cyclic
//!   scan, LRU wins a pinned-line stream) and follower sets demonstrably
//!   switch their decisions to the new winner;
//! * `identify` round-trips every registered policy on a quick probe trace,
//!   reporting ambiguity explicitly instead of guessing when two candidates
//!   produce identical decision streams.

use std::cell::RefCell;
use std::rc::Rc;
use uopcache::cache::{LruPolicy, PwMeta, PwReplacementPolicy, UopCache};
use uopcache::model::json::Json;
use uopcache::model::{Addr, PwAccess, PwDesc, PwTermination, UopCacheConfig};
use uopcache::offline::identify::{digest_run, digest_table, identify};
use uopcache::offline::IdentifyVerdict;
use uopcache::policies::dueling::leader_map;
use uopcache::policies::{MruPolicy, SetDuelingPolicy};
use uopcache_bench::apps::trace_for;
use uopcache_bench::policies::{PolicyRegistry, ProfileInputs};

#[test]
fn leader_map_is_a_pure_function_of_its_inputs() {
    for (sets, k, n) in [(64, 2, 4), (16, 1, 2), (8, 2, 3), (3, 2, 4), (1, 1, 1)] {
        let a = leader_map(sets, k, n);
        let b = leader_map(sets, k, n);
        assert_eq!(a, b, "({sets},{k},{n}): map must be deterministic");
        assert_eq!(a.len(), sets);
    }
}

#[test]
fn leader_map_partitions_k_leaders_per_candidate() {
    for (sets, k, n) in [(64, 2, 4), (64, 4, 2), (32, 1, 8), (16, 2, 2)] {
        let map = leader_map(sets, k, n);
        let mut per_candidate = vec![0usize; n];
        for cand in map.iter().flatten() {
            per_candidate[*cand] += 1;
        }
        assert_eq!(
            per_candidate,
            vec![k; n],
            "({sets},{k},{n}): every candidate gets exactly K leader sets"
        );
        let followers = map.iter().filter(|m| m.is_none()).count();
        assert_eq!(followers, sets - k * n, "({sets},{k},{n})");
    }
}

#[test]
fn leader_map_degrades_gracefully_when_sets_are_scarce() {
    // 3 sets cannot host 2x4 leaders: the available sets are handed out
    // round-robin and nothing panics.
    let map = leader_map(3, 2, 4);
    assert_eq!(map, vec![Some(0), Some(1), Some(2)]);
    // k = 0 means no leaders at all: everyone follows the incumbent.
    assert!(leader_map(16, 0, 4).iter().all(Option::is_none));
}

fn meta(slot: u8, inserted_at: u64, last_access: u64) -> PwMeta {
    PwMeta {
        desc: PwDesc::new(
            Addr::new(0x100 + u64::from(slot) * 64),
            4,
            12,
            PwTermination::TakenBranch,
        ),
        slot,
        entries: 1,
        inserted_at,
        last_access,
        hits: 0,
    }
}

#[test]
fn followers_switch_to_the_phase_winner() {
    // Two candidates (LRU, MRU), K = 1, 8 sets: set 0 is LRU's leader,
    // set 4 MRU's, the rest follow. Charge misses against LRU's leader set
    // only, cross a phase boundary, and a *follower* set's victim choice
    // must flip from LRU's (oldest) to MRU's (newest).
    let phase = 32u64;
    let mut duel = SetDuelingPolicy::new(
        vec![Box::new(LruPolicy::new()), Box::new(MruPolicy::new())],
        1,
        phase,
    );
    duel.prepare(8, 4);
    assert_eq!(duel.leader_of(0), Some(0));
    assert_eq!(duel.leader_of(4), Some(1));
    assert_eq!(duel.leader_of(1), None, "set 1 follows");
    assert_eq!(
        duel.winner_name(),
        "LRU",
        "first candidate is the incumbent"
    );

    let resident = [meta(0, 1, 1), meta(1, 2, 9), meta(2, 3, 5)];
    let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
    // LRU evicts the least recently used (slot 0); MRU the most recent
    // (slot 1). While LRU holds the crown, follower sets take its pick.
    assert_eq!(duel.choose_victim(1, &incoming, &resident), 0);

    // A miss in LRU's leader set charges LRU's PSEL; MRU stays clean.
    for _ in 0..phase {
        duel.should_bypass(0, &incoming, 1, 0, &resident);
        duel.on_lookup(&incoming);
    }
    let (phases, switches) = duel.phase_counts();
    assert!(phases >= 1, "a phase boundary must have passed");
    assert_eq!(switches, 1, "exactly one crown change");
    assert_eq!(duel.winner_name(), "MRU");
    assert_eq!(
        duel.choose_victim(1, &incoming, &resident),
        1,
        "the follower now takes MRU's pick"
    );
    // Leaders keep dueling with their own candidate regardless of the crown.
    assert_eq!(duel.choose_victim(0, &incoming, &resident), 0);
}

/// Builds a probe trace that alternates between an MRU-friendly cyclic scan
/// (5 tags round-robin thrash LRU, MRU keeps 3 of 5 resident) and an
/// LRU-friendly pinned-line stream (one hot line plus cold streams; MRU
/// keeps evicting the hot line). Each phase covers every set.
fn two_phase_trace(sets: u64, lookups_per_phase: usize) -> uopcache::model::LookupTrace {
    let addr = |set: u64, tag: u64| Addr::new(0x4_0000 + (tag * sets + set) * 64);
    let pw = |a: Addr| PwAccess::new(PwDesc::new(a, 4, 12, PwTermination::TakenBranch));
    let mut out = Vec::new();
    // Phase A: cyclic scan, tags 0..5 in every set.
    let mut i = 0u64;
    while out.len() < lookups_per_phase {
        let set = i % sets;
        let tag = (i / sets) % 5;
        out.push(pw(addr(set, tag)));
        i += 1;
    }
    // Phase B: pinned line (tag 0) interleaved with a cold stream. The set
    // index advances every *pair* so each set sees hot, cold, hot, cold —
    // a plain `j % sets` would correlate set parity with hot/cold parity
    // and starve the odd sets of the hot line entirely.
    let mut j = 0u64;
    while out.len() < 2 * lookups_per_phase {
        let set = (j / 2) % sets;
        if j.is_multiple_of(2) {
            out.push(pw(addr(set, 0)));
        } else {
            out.push(pw(addr(set, 10 + (j / 2) % 24)));
        }
        j += 1;
    }
    out.into_iter().collect()
}

/// Forwards hooks to a shared policy so the test can watch the duel evolve
/// while the cache drives it.
struct Shared(Rc<RefCell<SetDuelingPolicy>>);

impl PwReplacementPolicy for Shared {
    fn name(&self) -> &'static str {
        self.0.borrow().name()
    }
    fn prepare(&mut self, sets: usize, ways: u32) {
        self.0.borrow_mut().prepare(sets, ways);
    }
    fn on_lookup(&mut self, pw: &PwDesc) {
        self.0.borrow_mut().on_lookup(pw);
    }
    fn on_hit(&mut self, set: usize, m: &PwMeta) {
        self.0.borrow_mut().on_hit(set, m);
    }
    fn on_insert(&mut self, set: usize, m: &PwMeta) {
        self.0.borrow_mut().on_insert(set, m);
    }
    fn on_evict(&mut self, set: usize, m: &PwMeta) {
        self.0.borrow_mut().on_evict(set, m);
    }
    fn on_invalidate(&mut self, set: usize, m: &PwMeta) {
        self.0.borrow_mut().on_invalidate(set, m);
    }
    fn should_bypass(
        &mut self,
        set: usize,
        incoming: &PwDesc,
        needed: u32,
        free: u32,
        resident: &[PwMeta],
    ) -> bool {
        self.0
            .borrow_mut()
            .should_bypass(set, incoming, needed, free, resident)
    }
    fn choose_victim(&mut self, set: usize, incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        self.0.borrow_mut().choose_victim(set, incoming, resident)
    }
    fn introspect(&self) -> Option<Json> {
        self.0.borrow().introspect()
    }
}

#[test]
fn crafted_two_phase_workload_flips_the_winner_through_the_real_cache() {
    let cfg = UopCacheConfig {
        entries: 32,
        ways: 4,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: 4,
    };
    let sets = u64::from(cfg.sets());
    let phase_lookups = 2_048usize;
    let duel = SetDuelingPolicy::new(
        vec![Box::new(LruPolicy::new()), Box::new(MruPolicy::new())],
        1,
        256,
    );
    let shared = Rc::new(RefCell::new(duel));
    let handle = Rc::clone(&shared);
    let mut cache = UopCache::new(cfg, Box::new(Shared(shared)));
    let trace = two_phase_trace(sets, phase_lookups);

    let mut winner_after_a = None;
    for (i, access) in trace.iter().enumerate() {
        if !cache.lookup(&access.pw).is_full_hit() {
            cache.insert(&access.pw);
        }
        if i + 1 == phase_lookups {
            winner_after_a = Some(handle.borrow().winner_name());
        }
    }
    let winner_after_b = handle.borrow().winner_name();
    assert_eq!(
        winner_after_a,
        Some("MRU"),
        "the cyclic scan must crown MRU"
    );
    assert_eq!(
        winner_after_b, "LRU",
        "the pinned-line stream takes it back"
    );
    let (phases, switches) = handle.borrow().phase_counts();
    assert!(phases >= 2, "both phase boundaries crossed (saw {phases})");
    assert!(
        switches >= 2,
        "the crown must change hands at least twice (saw {switches})"
    );

    // The duel's introspection is a JSON object naming every candidate.
    let state = handle.borrow().introspect().expect("duel introspects");
    let text = state.to_string();
    assert!(text.contains("\"winner\":\"LRU\""), "{text}");
    assert!(text.contains("\"candidates\":["), "{text}");
}

fn quick_cfg() -> UopCacheConfig {
    let mut cfg = UopCacheConfig::zen3();
    cfg.entries /= 4;
    cfg
}

#[test]
fn identify_round_trips_every_registered_policy() {
    let frontend = {
        let mut f = uopcache::model::FrontendConfig::zen3();
        f.uop_cache = quick_cfg();
        f
    };
    let trace = trace_for(uopcache::trace::AppId::Kafka, 0, 2_500);
    let profiles = ProfileInputs::build(&frontend, &trace);
    let registry = PolicyRegistry::all();
    let table = digest_table(
        quick_cfg(),
        registry
            .ids()
            .iter()
            .map(|id| (id.name().to_string(), id.build(&frontend, &profiles, 0)))
            .collect(),
        &trace,
    );
    let mut unique = 0;
    for id in registry.ids() {
        let captured = digest_run(quick_cfg(), id.build(&frontend, &profiles, 0), &trace);
        match identify(captured, &table) {
            IdentifyVerdict::Unique(name) => {
                assert_eq!(name, id.name(), "misidentified");
                unique += 1;
            }
            IdentifyVerdict::Ambiguous(names) => {
                assert!(
                    names.iter().any(|n| n == id.name()),
                    "{}: ambiguity set {names:?} must contain the generator",
                    id.name()
                );
            }
            IdentifyVerdict::Unknown => {
                panic!("{}: a registered policy cannot be unknown", id.name())
            }
        }
    }
    assert!(
        unique >= registry.ids().len() - 2,
        "the probe trace should separate nearly every policy ({unique} unique)"
    );
}

#[test]
fn identify_reports_ambiguity_rather_than_guessing() {
    let trace = trace_for(uopcache::trace::AppId::Postgres, 0, 1_500);
    // The same policy under two names: a digest collision by construction.
    let table = digest_table(
        quick_cfg(),
        vec![
            ("LRU".into(), Box::new(LruPolicy::new()) as _),
            ("LRU-prime".into(), Box::new(LruPolicy::new()) as _),
            ("MRU".into(), Box::new(MruPolicy::new()) as _),
        ],
        &trace,
    );
    let captured = digest_run(quick_cfg(), Box::new(LruPolicy::new()), &trace);
    assert_eq!(
        identify(captured, &table),
        IdentifyVerdict::Ambiguous(vec!["LRU".into(), "LRU-prime".into()])
    );
    let mru = digest_run(quick_cfg(), Box::new(MruPolicy::new()), &trace);
    assert_eq!(identify(mru, &table), IdentifyVerdict::Unique("MRU".into()));
}
